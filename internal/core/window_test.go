package core

import (
	"math/rand"
	"testing"

	"ksp/internal/gen"
	"ksp/internal/rdf"
)

// The tentpole equivalence sweep for windowed scheduling: across random
// datasets and queries, every algorithm under every window size — fixed
// W ∈ {1, 2, 7, 64} and the adaptive policy (0) — must return results
// bit-identical to the seed serial loop (Window: 1), under both the
// serial and the parallel pipeline, with and without the looseness
// cache, trees included.
func TestWindowedMatchesSerial(t *testing.T) {
	configs := []gen.Config{
		gen.DBpediaConfig(1500, 1001),
		gen.YagoConfig(1500, 1002),
	}
	windows := []int{1, 2, 7, 64, 0} // 0 = adaptive
	for ci, cfg := range configs {
		g := gen.Generate(cfg)
		qg := gen.NewQueryGen(g, rdf.Outgoing, int64(1010+ci))
		ref := NewEngine(g, rdf.Outgoing)
		ref.EnableReach()
		ref.EnableAlpha(3)
		cached := NewEngine(g, rdf.Outgoing)
		cached.EnableReach()
		cached.EnableAlpha(3)
		cached.EnableLoosenessCache(0)

		rng := rand.New(rand.NewSource(int64(1020 + ci)))
		for trial := 0; trial < 4; trial++ {
			m := 1 + rng.Intn(5)
			k := 1 + rng.Intn(8)
			loc, kws := qg.Original(m)
			q := Query{Loc: loc, Keywords: kws, K: k}
			for _, a := range pipelineAlgos {
				want, _, err := a.run(ref, q, Options{CollectTrees: true, Window: 1})
				if err != nil {
					t.Fatalf("%s seed serial: %v", a.name, err)
				}
				for _, e := range []*Engine{ref, cached} {
					for _, win := range windows {
						for _, par := range []int{0, 4} {
							got, _, err := a.run(e, q, Options{CollectTrees: true, Window: win, Parallelism: par})
							if err != nil {
								t.Fatalf("%s window=%d par=%d: %v", a.name, win, par, err)
							}
							identicalResults(t, a.name, got, want)
							sameTrees(t, a.name, got, want)
						}
					}
				}
			}
		}
	}
}

// Window counters: the legacy path (Window: 1) must not touch them, a
// windowed run must reconcile them (every candidate is evaluated,
// screen-killed or deferred-killed), and the engine-lifetime totals must
// accumulate across queries.
func TestWindowStatsReconcile(t *testing.T) {
	g := gen.Generate(gen.YagoConfig(1500, 1030))
	qg := gen.NewQueryGen(g, rdf.Outgoing, 1031)
	e := NewEngine(g, rdf.Outgoing)
	e.EnableReach()
	loc, kws := qg.Original(4)
	q := Query{Loc: loc, Keywords: kws, K: 10}

	_, legacy, err := e.SPP(q, Options{Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	if legacy.WindowsFilled != 0 || legacy.WindowCandidates != 0 ||
		legacy.WindowScreenKilled != 0 || legacy.WindowDeferredKilled != 0 {
		t.Fatalf("Window:1 run touched window counters: %+v", legacy)
	}
	if ws := e.WindowStats(); ws != (WindowStats{}) {
		t.Fatalf("lifetime totals non-zero before any windowed query: %+v", ws)
	}

	_, stats, err := e.SPP(q, Options{}) // adaptive default
	if err != nil {
		t.Fatal(err)
	}
	if stats.WindowsFilled == 0 || stats.WindowCandidates == 0 {
		t.Fatalf("windowed run recorded no fills: %+v", stats)
	}
	dead := stats.WindowScreenKilled + stats.WindowDeferredKilled
	if dead > stats.WindowCandidates {
		t.Fatalf("more kills (%d) than candidates (%d)", dead, stats.WindowCandidates)
	}
	// Evaluated candidates are exactly the ones the loop retrieved.
	if ev := stats.WindowCandidates - dead; ev != stats.PlacesRetrieved {
		t.Fatalf("evaluated %d != PlacesRetrieved %d", ev, stats.PlacesRetrieved)
	}

	ws := e.WindowStats()
	if ws.Fills != stats.WindowsFilled || ws.Candidates != stats.WindowCandidates ||
		ws.ScreenKilled != stats.WindowScreenKilled || ws.DeferredKilled != stats.WindowDeferredKilled {
		t.Fatalf("lifetime totals %+v don't match the query stats %+v", ws, stats)
	}
}

// The point of the scheduler: on a top-k query the adaptive window must
// construct no more TQSPs than the seed serial loop — and strictly fewer
// when any screen or deferred kill landed.
func TestWindowReducesConstructions(t *testing.T) {
	g := gen.Generate(gen.YagoConfig(2500, 1040))
	qg := gen.NewQueryGen(g, rdf.Outgoing, 1041)
	e := NewEngine(g, rdf.Outgoing)
	e.EnableReach()
	var serialT, windowT, kills int64
	for trial := 0; trial < 8; trial++ {
		loc, kws := qg.Original(3)
		q := Query{Loc: loc, Keywords: kws, K: 10}
		_, s1, err := e.SPP(q, Options{Window: 1})
		if err != nil {
			t.Fatal(err)
		}
		_, sw, err := e.SPP(q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		serialT += s1.TQSPComputations
		windowT += sw.TQSPComputations
		kills += sw.WindowScreenKilled + sw.WindowDeferredKilled
	}
	if windowT > serialT {
		t.Fatalf("windowed SPP constructed more TQSPs than serial: %d vs %d", windowT, serialT)
	}
	if kills > 0 && windowT >= serialT {
		t.Fatalf("kills landed (%d) but constructions did not drop: %d vs %d", kills, windowT, serialT)
	}
	t.Logf("TQSP constructions: serial=%d windowed=%d (kills=%d)", serialT, windowT, kills)
}

// resolveWindow's mapping from Options.Window to size and policy.
func TestResolveWindow(t *testing.T) {
	cases := []struct {
		in       int
		w        int
		adaptive bool
	}{
		{1, 1, false},
		{2, 2, false},
		{64, 64, false},
		{0, windowInit, true},
		{-1, windowInit, true},
	}
	for _, c := range cases {
		w, adaptive := resolveWindow(Options{Window: c.in})
		if w != c.w || adaptive != c.adaptive {
			t.Errorf("resolveWindow(%d) = (%d, %v), want (%d, %v)", c.in, w, adaptive, c.w, c.adaptive)
		}
	}
}
