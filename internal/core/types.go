package core

import (
	"runtime"
	"time"

	"ksp/internal/geo"
	"ksp/internal/obs"
)

// Query is a kSP query: a location, a set of keywords, and the number of
// requested semantic places (Section 2).
type Query struct {
	Loc      geo.Point
	Keywords []string
	K        int
}

// Options tune a single query execution.
type Options struct {
	// Deadline aborts the algorithm after the given duration (the paper
	// caps BSP at 120 seconds and reports partial statistics). Zero means
	// no deadline.
	Deadline time.Duration
	// CollectTrees materializes the TQSP of each result (root-to-keyword
	// shortest paths) instead of reporting scores only.
	CollectTrees bool
	// NoRule1 / NoRule2 disable the corresponding pruning rules in SPP
	// and SP — used by the ablation benchmarks, never in normal operation.
	NoRule1 bool
	NoRule2 bool
	// UseGrid makes BSP/SPP consume places from the uniform grid instead
	// of the R-tree (requires Engine.EnableGrid). Results are identical;
	// only access counts change. SP always uses the R-tree, whose node
	// structure its pruning rules depend on.
	UseGrid bool
	// MaxDist, when positive, restricts results to places within that
	// Euclidean distance of the query location ("nearby hospitals" really
	// means nearby). All algorithms honour it and use it as an extra
	// termination bound.
	MaxDist float64
	// Parallelism selects the number of TQSP workers in the pipelined
	// evaluation of BSP/SPP/SP: candidates are produced in the serial
	// algorithm's order, fanned out to a worker pool for concurrent TQSP
	// construction, and finalized in order so results are identical to a
	// serial run (see DESIGN.md §8). 0 or 1 runs the classic serial
	// loops; negative selects GOMAXPROCS. TA is always serial.
	Parallelism int
	// Window sets the candidate-window size of the windowed, bound-ordered
	// scheduler in BSP/SPP/SP (DESIGN.md §11): the spatial stream is
	// consumed in bulk pops of W places, each window is screened with
	// zero-BFS bounds, and survivors are evaluated best-lower-bound first
	// so θ drops early. 1 runs the classic one-candidate-at-a-time loops
	// (bit-for-bit legacy behavior); >= 2 fixes the window at that size;
	// 0 (the default) or negative selects the adaptive policy (grow while
	// the screen kill-rate is high, shrink near termination). Results are
	// identical under every setting — only the work counters change. TA
	// and keyword search ignore it.
	Window int
	// PipelineDepth bounds, per worker, how far the parallel pipeline's
	// producer may run ahead of the finalizer: each worker's deque holds
	// at most PipelineDepth waiting candidates and the reorder buffer at
	// most PipelineDepth × workers, so no more than 2 × PipelineDepth ×
	// workers candidates ever sit between production and finalization
	// (the backpressure invariant — see resolveDepth). 0 (the default)
	// derives the depth from the worker count and window size, adjusted
	// by the engine's starvation feedback; explicit values disable that
	// feedback for the query and clamp to an internal maximum (64).
	// Results are identical under every depth — only scheduling, memory,
	// and the amount of speculative work a θ drop can waste change.
	// Ignored by serial runs.
	PipelineDepth int
	// Cancel aborts evaluation early when the channel is closed (e.g. an
	// HTTP client disconnecting: pass Request.Context().Done()). Partial
	// statistics are reported with Stats.Cancelled set.
	Cancel <-chan struct{}
	// Trace, when non-nil, receives a tree of timed spans covering the
	// query's phases (prepare, place browsing, per-candidate TQSP
	// construction, pruning decisions; producer/worker/finalize stages of
	// a parallel run). All span calls are nil-safe, so a nil Trace costs
	// nothing. The caller owns the trace and calls Finish/JSON on it.
	Trace *obs.Trace
}

// workers resolves Options.Parallelism to a worker count.
func (o Options) workers() int {
	switch {
	case o.Parallelism < 0:
		return runtime.GOMAXPROCS(0)
	case o.Parallelism == 0:
		return 1
	default:
		return o.Parallelism
	}
}

// Result is one TQSP in a kSP answer.
type Result struct {
	// Place is the root place vertex.
	Place uint32
	// Looseness is L(Tp) per Definition 2.
	Looseness float64
	// Dist is the Euclidean distance S(q, p).
	Dist float64
	// Score is f(L(Tp), S(q, p)).
	Score float64
	// Exact reports that this result provably belongs to the exact top-k
	// at this exact rank. Always true after a complete run; after a
	// partial (deadline/cancelled) run it holds exactly for the prefix
	// whose scores stay below Stats.ScoreBound (see DESIGN.md §9).
	Exact bool
	// Tree is the materialized TQSP when Options.CollectTrees is set.
	Tree *Tree
}

// Tree is a materialized TQSP: the union of the shortest paths from the
// root to the first-encountered vertex of every query keyword.
type Tree struct {
	Root uint32
	// Nodes lists the tree's vertices (root first) with their BFS parent
	// (the root's parent is the root itself) and depth.
	Nodes []TreeNode
}

// TreeNode is one vertex of a TQSP.
type TreeNode struct {
	V      uint32
	Parent uint32
	Depth  int
	// Matched holds the query-keyword positions (indexes into the deduped
	// query keyword list) first covered at this vertex.
	Matched []int
}

// Stats aggregates the cost counters the paper reports per experiment.
type Stats struct {
	// TQSPComputations counts GETSEMANTICPLACE invocations
	// (Figures 3(b), 4(b)).
	TQSPComputations int64
	// RTreeNodeAccesses counts expanded R-tree nodes
	// (Figures 3(c), 4(c), 7(b)).
	RTreeNodeAccesses int64
	// PlacesRetrieved counts places popped from the spatial source.
	PlacesRetrieved int64
	// ReachQueries counts reachability-index probes (Pruning Rule 1).
	ReachQueries int64
	// PrunedUnqualified counts places discarded by Pruning Rule 1.
	PrunedUnqualified int64
	// PrunedDynamicBound counts TQSP constructions aborted by Rule 2.
	PrunedDynamicBound int64
	// PrunedAlphaPlaces / PrunedAlphaNodes count Rules 3 and 4 prunings.
	PrunedAlphaPlaces int64
	PrunedAlphaNodes  int64
	// BFSVertexVisits counts vertices touched during TQSP construction.
	BFSVertexVisits int64
	// CacheHits counts looseness-cache hits that returned an exact
	// L(Tp) and skipped the BFS entirely; CacheBoundHits counts hits on
	// a stored Rule-2 lower bound tight enough to prune without a BFS;
	// CacheMisses counts lookups that fell through to a TQSP
	// construction. All zero when the cache is disabled.
	CacheHits      int64
	CacheBoundHits int64
	CacheMisses    int64
	// WindowsFilled counts bulk pops by the windowed scheduler;
	// WindowCandidates counts places that entered a window;
	// WindowScreenKilled counts candidates discarded by the zero-BFS
	// screens at fill time; WindowDeferredKilled counts screen survivors
	// later invalidated by a θ drop before evaluation. All zero when
	// Options.Window is 1.
	WindowsFilled        int64
	WindowCandidates     int64
	WindowScreenKilled   int64
	WindowDeferredKilled int64
	// Steals counts candidates a parallel worker took from a peer's
	// deque; OwnPops counts candidates taken from the worker's own
	// deque (Steals + OwnPops = candidates that reached a worker).
	// WorkerIdle is the total time workers spent parked waiting for
	// candidates, summed across workers. All zero in serial runs.
	Steals     int64
	OwnPops    int64
	WorkerIdle time.Duration
	// SemanticTime is the time spent constructing TQSPs; OtherTime is the
	// remaining runtime (spatial search, reachability queries, bounds) —
	// the two bar segments of the paper's runtime figures.
	SemanticTime time.Duration
	OtherTime    time.Duration
	// TimedOut reports that Options.Deadline fired before completion.
	TimedOut bool
	// Cancelled reports that Options.Cancel fired before completion.
	Cancelled bool
	// Partial reports that evaluation stopped early (TimedOut or
	// Cancelled) and the results are the best-so-far top-k rather than
	// the proven answer. Per-result guarantees are in Result.Exact.
	Partial bool
	// ScoreBound is, after a partial run, a lower bound on the score of
	// every place the algorithm did not finalize (the Lemma-1 floor of
	// the next candidate at the moment evaluation stopped). Results
	// scoring strictly below it are exact. Zero when Partial is false
	// or no bound was established.
	ScoreBound float64
}

// TotalTime returns SemanticTime + OtherTime.
func (s *Stats) TotalTime() time.Duration { return s.SemanticTime + s.OtherTime }

// Add accumulates other into s (used by the bench harness to average over
// query workloads).
func (s *Stats) Add(o *Stats) {
	s.TQSPComputations += o.TQSPComputations
	s.RTreeNodeAccesses += o.RTreeNodeAccesses
	s.PlacesRetrieved += o.PlacesRetrieved
	s.ReachQueries += o.ReachQueries
	s.PrunedUnqualified += o.PrunedUnqualified
	s.PrunedDynamicBound += o.PrunedDynamicBound
	s.PrunedAlphaPlaces += o.PrunedAlphaPlaces
	s.PrunedAlphaNodes += o.PrunedAlphaNodes
	s.BFSVertexVisits += o.BFSVertexVisits
	s.CacheHits += o.CacheHits
	s.CacheBoundHits += o.CacheBoundHits
	s.CacheMisses += o.CacheMisses
	s.WindowsFilled += o.WindowsFilled
	s.WindowCandidates += o.WindowCandidates
	s.WindowScreenKilled += o.WindowScreenKilled
	s.WindowDeferredKilled += o.WindowDeferredKilled
	s.Steals += o.Steals
	s.OwnPops += o.OwnPops
	s.WorkerIdle += o.WorkerIdle
	s.SemanticTime += o.SemanticTime
	s.OtherTime += o.OtherTime
	if o.TimedOut {
		s.TimedOut = true
	}
	if o.Cancelled {
		s.Cancelled = true
	}
	if o.Partial && (!s.Partial || o.ScoreBound < s.ScoreBound) {
		s.Partial = true
		s.ScoreBound = o.ScoreBound
	}
}
