package core

import (
	"math"

	"ksp/internal/alpha"
	"ksp/internal/geo"
	"ksp/internal/rtree"
)

// bulkSpatial and peekSpatial are the optional spatial-source extensions
// the windowed scheduler exploits: one bulk pop amortizing the heap
// bookkeeping over a whole window, and a peek at the next distance that
// serves as the window's resume bound. The R-tree browser provides both;
// a source without them falls back to one-at-a-time popping.
type bulkSpatial interface {
	NextK(k int, out []rtree.ItemDist) []rtree.ItemDist
}

type peekSpatial interface {
	PeekDist() (float64, bool)
}

// streamSource adapts the incremental nearest-place stream (R-tree or
// grid browser) to the candidate pipeline for BSP and SPP: candidates
// arrive in ascending spatial distance, bounded below by MinScore(dist)
// (Algorithm 1 line 7). MaxDist ends the stream — it is distance-ordered,
// so the radius cap is a termination condition.
type streamSource struct {
	br      spatialSource
	rank    Ranking
	maxDist float64
	stats   *Stats
	ibuf    []rtree.ItemDist // NextK scratch, reused across window fills
}

func (s *streamSource) next() (candidate, bool) {
	it, dist, ok := s.br.Next()
	if !ok {
		return candidate{}, false
	}
	if s.maxDist > 0 && dist > s.maxDist {
		return candidate{}, false
	}
	return candidate{place: it.ID, dist: dist, bound: s.rank.MinScore(dist)}, true
}

func (s *streamSource) close() { s.stats.RTreeNodeAccesses += s.br.Accesses() }

// fillWindow bulk-pops up to w places in ascending distance order. The
// resume bound is MinScore of the browser's next (unpopped) distance:
// the stream is distance-ordered, so it lower-bounds every candidate
// beyond the window. +Inf means exhausted — including the case where the
// stream crossed MaxDist, after which no in-range place remains.
func (s *streamSource) fillWindow(w int, buf []windowCand) ([]windowCand, float64) {
	bk, ok := s.br.(bulkSpatial)
	if !ok {
		// One-at-a-time fallback for spatial sources without NextK.
		for len(buf) < w {
			c, next := s.next()
			if !next {
				return buf, math.Inf(1)
			}
			buf = append(buf, windowCand{place: c.place, dist: c.dist, bound: c.bound})
		}
		resume := math.Inf(1)
		if pk, ok := s.br.(peekSpatial); ok {
			if d, more := pk.PeekDist(); more && !(s.maxDist > 0 && d > s.maxDist) {
				resume = s.rank.MinScore(d)
			}
		} else if n := len(buf); n > 0 {
			resume = buf[n-1].bound // bounds are non-decreasing along the stream
		}
		return buf, resume
	}
	s.ibuf = bk.NextK(w, s.ibuf[:0])
	for _, id := range s.ibuf {
		if s.maxDist > 0 && id.Dist > s.maxDist {
			return buf, math.Inf(1)
		}
		buf = append(buf, windowCand{place: id.Item.ID, dist: id.Dist, bound: s.rank.MinScore(id.Dist)})
	}
	resume := math.Inf(1)
	if pk, ok := s.br.(peekSpatial); ok {
		if d, more := pk.PeekDist(); more && !(s.maxDist > 0 && d > s.maxDist) {
			resume = s.rank.MinScore(d)
		}
	} else if n := len(buf); n == w && n > 0 {
		resume = buf[n-1].bound
	}
	return buf, resume
}

// spSource drives SP's best-first traversal (Algorithm 4): one priority
// queue holds R-tree nodes and places keyed by their α-bounds on the
// ranking score; node expansion applies Pruning Rules 3 and 4 against
// the current θ. With the exact θ (serial) the produced stream is
// exactly Algorithm 4's; with a stale θ (parallel producer) it is a
// superset in the same non-decreasing bound order, which the finalizer's
// exact checks reduce to the serial result (DESIGN.md §8).
type spSource struct {
	e       *Engine
	qv      *alpha.QueryView
	theta   func() float64
	qloc    geo.Point
	maxDist float64
	stats   *Stats
	pqueue  spHeap
}

func (s *spSource) next() (candidate, bool) {
	for s.pqueue.Len() > 0 {
		ent := s.pqueue.pop()
		// Termination (Algorithm 4 line 9): every remaining entry's bound
		// is at least ent.bound.
		if ent.bound >= s.theta() {
			return candidate{}, false
		}
		if ent.node == nil {
			return candidate{place: ent.place, dist: ent.dist, bound: ent.bound}, true
		}

		// Node: expand children under Pruning Rules 3 and 4. SP walks the
		// tree through its own queue rather than a Browser, so the live
		// node-access metric is fed directly here.
		s.stats.RTreeNodeAccesses++
		s.e.noteRTreeAccess()
		n := ent.node
		th := s.theta()
		if n.Leaf {
			for _, it := range n.Items {
				d := s.qloc.Dist(it.Loc)
				if s.maxDist > 0 && d > s.maxDist {
					continue // outside the query radius
				}
				fb := s.e.Rank.Score(s.qv.PlaceBound(it.ID), d)
				if fb < th {
					s.pqueue.push(spEntry{bound: fb, dist: d, place: it.ID})
				} else {
					s.stats.PrunedAlphaPlaces++ // Pruning Rule 3
				}
			}
		} else {
			for _, ch := range n.Children {
				d := ch.Rect.MinDist(s.qloc)
				if s.maxDist > 0 && d > s.maxDist {
					continue // whole subtree outside the radius
				}
				fb := s.e.Rank.Score(s.qv.NodeBound(ch.ID), d)
				if fb < th {
					s.pqueue.push(spEntry{bound: fb, dist: d, node: ch})
				} else {
					s.stats.PrunedAlphaNodes++ // Pruning Rule 4
				}
			}
		}
	}
	return candidate{}, false
}

func (s *spSource) close() {}

// fillWindow pops up to w places in ascending α-bound order. The resume
// bound is the head of the priority queue, which lower-bounds every
// remaining entry (places and unexpanded subtrees alike). When next
// terminated on θ the discarded head was already >= θ, so the queue head
// still lower-bounds the (dead) remainder and the scheduler ends the
// stream on its own resume >= θ test.
func (s *spSource) fillWindow(w int, buf []windowCand) ([]windowCand, float64) {
	for len(buf) < w {
		c, ok := s.next()
		if !ok {
			break
		}
		buf = append(buf, windowCand{place: c.place, dist: c.dist, bound: c.bound})
	}
	if s.pqueue.Len() == 0 {
		return buf, math.Inf(1)
	}
	return buf, s.pqueue[0].bound
}
