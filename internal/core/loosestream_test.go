package core

import (
	"math"
	"testing"

	"ksp/internal/gen"
	"ksp/internal/rdf"
)

// The looseness stream behind TA and KeywordTopK must enumerate exactly
// the qualified places, each once, in non-decreasing looseness, with the
// same looseness Algorithm 2 computes.
func TestLooseStreamCompleteAndOrdered(t *testing.T) {
	g := gen.Generate(gen.YagoConfig(1200, 901))
	qg := gen.NewQueryGen(g, rdf.Outgoing, 902)
	e := NewEngine(g, rdf.Outgoing)
	for trial := 0; trial < 6; trial++ {
		_, kws := qg.Original(1 + trial%4)
		pq, err := e.prepare(Query{Keywords: kws})
		if err != nil {
			t.Fatal(err)
		}
		if !pq.answerable {
			continue
		}
		stats := &Stats{}
		ls := newLooseStream(e, pq, stats)
		got := map[uint32]float64{}
		prev := math.Inf(-1)
		for {
			p, loose, ok := ls.next()
			if !ok {
				break
			}
			if loose < prev {
				t.Fatalf("trial %d: stream not ordered: %v after %v", trial, loose, prev)
			}
			prev = loose
			if _, dup := got[p]; dup {
				t.Fatalf("trial %d: place %d emitted twice", trial, p)
			}
			got[p] = loose
		}

		// Reference: Algorithm 2 looseness per place.
		s := newSearcher(e, pq, &Stats{}, false)
		for _, p := range g.Places() {
			want, _ := s.getSemanticPlace(p, math.Inf(1))
			if math.IsInf(want, 1) {
				if _, ok := got[p]; ok {
					t.Fatalf("trial %d: unqualified place %d emitted", trial, p)
				}
				continue
			}
			loose, ok := got[p]
			if !ok {
				t.Fatalf("trial %d: qualified place %d missing from stream", trial, p)
			}
			if loose != want {
				t.Fatalf("trial %d: place %d stream L=%v, Algorithm 2 L=%v", trial, p, loose, want)
			}
		}
	}
}

// A keyword occurring at the place itself yields the stream's minimum
// possible looseness of 1 and is emitted in round zero.
func TestLooseStreamSelfCover(t *testing.T) {
	b := rdf.NewBuilder()
	p := b.AddBareVertex("p")
	b.AddTermID(p, b.Vocab.ID("here"))
	b.SetLocation(p, rdfPoint())
	e := NewEngine(b.Build(), rdf.Outgoing)
	pq, err := e.prepare(Query{Keywords: []string{"here"}})
	if err != nil {
		t.Fatal(err)
	}
	ls := newLooseStream(e, pq, &Stats{})
	got, loose, ok := ls.next()
	if !ok || got != p || loose != 1 {
		t.Fatalf("next = %d, %v, %v", got, loose, ok)
	}
	if _, _, ok := ls.next(); ok {
		t.Fatal("stream should be exhausted")
	}
}
