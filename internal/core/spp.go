package core

import (
	"fmt"
	"math"
	"time"
)

// SPP evaluates q with Semantic Place retrieval with Pruning (Section 4):
// BSP plus Pruning Rule 1 (unqualified places are rejected by reachability
// queries before any TQSP construction) and Pruning Rule 2 (TQSP
// construction aborts once its dynamic looseness lower bound reaches the
// threshold Lw = f⁻¹(θ; S)). Requires EnableReach.
func (e *Engine) SPP(q Query, opts Options) ([]Result, *Stats, error) {
	start := time.Now()
	stats := &Stats{}
	if e.Reach == nil {
		return nil, stats, fmt.Errorf("core: SPP requires the reachability index (EnableReach)")
	}
	pq, err := e.prepare(q)
	if err != nil {
		return nil, stats, err
	}
	hk := newTopK(q.K)
	if pq.answerable && q.K > 0 {
		if err := e.sppLoop(pq, opts, hk, stats); err != nil {
			return nil, stats, err
		}
	}
	results := hk.sorted()
	stats.OtherTime = time.Since(start) - stats.SemanticTime
	return results, stats, nil
}

func (e *Engine) sppLoop(pq *prepQuery, opts Options, hk *topK, stats *Stats) error {
	s := newSearcher(e, pq, stats, opts.CollectTrees)
	deadline := deadlineFor(opts)
	br, err := e.source(pq.loc.Loc, opts)
	if err != nil {
		return err
	}
	defer func() { stats.RTreeNodeAccesses += br.Accesses() }()

	for i := 0; ; i++ {
		it, dist, ok := br.Next()
		if !ok {
			return nil
		}
		if opts.MaxDist > 0 && dist > opts.MaxDist {
			return nil
		}
		if e.Rank.MinScore(dist) >= hk.theta() {
			return nil
		}
		stats.PlacesRetrieved++
		if i%64 == 0 && expired(deadline) {
			stats.TimedOut = true
			return nil
		}

		if !opts.NoRule1 && e.unqualified(it.ID, pq, stats) { // Pruning Rule 1
			continue
		}

		// Pruning Rule 2 via the looseness threshold of Definition 4.
		lw := math.Inf(1)
		if !opts.NoRule2 {
			lw = e.Rank.LoosenessThreshold(hk.theta(), dist)
		}
		semStart := time.Now()
		loose, tree := s.getSemanticPlace(it.ID, lw)
		stats.SemanticTime += time.Since(semStart)
		if math.IsInf(loose, 1) {
			continue
		}
		// With Rule 2 active any surviving place beats the current kth
		// candidate (its looseness is below Lw) — the guard below only
		// matters for the NoRule2 ablation.
		if f := e.Rank.Score(loose, dist); f < hk.theta() {
			hk.add(Result{Place: it.ID, Looseness: loose, Dist: dist, Score: f, Tree: tree})
		}
	}
}

// unqualified applies Pruning Rule 1: the place is discarded when some
// query keyword is unreachable from it. Keywords are probed in ascending
// document frequency — infrequent keywords reject fastest.
func (e *Engine) unqualified(p uint32, pq *prepQuery, stats *Stats) bool {
	for _, t := range pq.terms {
		stats.ReachQueries++
		if !e.Reach.CanReach(p, t) {
			stats.PrunedUnqualified++
			return true
		}
	}
	return false
}
