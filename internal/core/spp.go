package core

import (
	"fmt"
	"time"
)

// SPP evaluates q with Semantic Place retrieval with Pruning (Section 4):
// BSP plus Pruning Rule 1 (unqualified places are rejected by reachability
// queries before any TQSP construction) and Pruning Rule 2 (TQSP
// construction aborts once its dynamic looseness lower bound reaches the
// threshold Lw = f⁻¹(θ; S)). Requires EnableReach.
//
//ksplint:hotpath
func (e *Engine) SPP(q Query, opts Options) (results []Result, stats *Stats, err error) {
	start := time.Now()
	stats = &Stats{} //ksplint:ignore allocbound -- API contract: the caller owns the returned Stats
	defer e.noteOutcome(algoSPP, stats, &err)
	if e.Reach == nil {
		return nil, stats, fmt.Errorf("core: SPP requires the reachability index (EnableReach)")
	}
	defer guard("core.SPP", &results, &err)
	root := opts.Trace.Root()
	root.SetStr("algo", "SPP")
	prep := root.Child("prepare")
	pq, err := e.prepare(q)
	prep.End()
	if err != nil {
		return nil, stats, err
	}
	defer e.releasePrep(pq)
	hk := newTopK(q.K)
	if pq.answerable && q.K > 0 {
		if err := e.sppLoop(pq, opts, hk, stats); err != nil {
			return nil, stats, err
		}
	}
	results = hk.sorted()
	markExact(results, stats)
	finishStats(stats, time.Since(start))
	return results, stats, nil
}

func (e *Engine) sppLoop(pq *prepQuery, opts Options, hk *topK, stats *Stats) error {
	mk := func(st *Stats, _ func() float64) (candSource, error) {
		br, err := e.source(pq.loc.Loc, opts)
		if err != nil {
			return nil, err
		}
		return &streamSource{br: br, rank: e.Rank, maxDist: opts.MaxDist, stats: st}, nil
	}
	return e.run(mk, pq, opts, hk, stats, !opts.NoRule1, !opts.NoRule2)
}

// unqualified applies Pruning Rule 1: the place is discarded when some
// query keyword is unreachable from it. Keywords are probed in ascending
// document frequency — infrequent keywords reject fastest.
func (e *Engine) unqualified(p uint32, pq *prepQuery, stats *Stats) bool {
	for _, t := range pq.terms {
		stats.ReachQueries++
		if !e.Reach.CanReach(p, t) {
			stats.PrunedUnqualified++
			return true
		}
	}
	return false
}
