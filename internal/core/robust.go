package core

import (
	"fmt"
	"runtime/debug"

	"ksp/internal/faultinject"
)

// Fault-injection points compiled into the evaluation paths (see
// internal/faultinject). With no plan active each costs one atomic load.
var (
	// PointPrepare fires at query preparation (keyword resolution).
	PointPrepare = faultinject.Register("core.prepare")
	// PointSerialCandidate fires per candidate in the serial loop.
	PointSerialCandidate = faultinject.Register("core.serial.candidate")
	// PointProducer fires per candidate in the parallel producer.
	PointProducer = faultinject.Register("core.parallel.producer")
	// PointWorker fires per candidate in a parallel worker.
	PointWorker = faultinject.Register("core.parallel.worker")
	// PointFinalizer fires per candidate in the parallel finalizer.
	PointFinalizer = faultinject.Register("core.parallel.finalizer")
	// PointBFS fires at the start of every TQSP construction.
	PointBFS = faultinject.Register("core.bfs")
	// PointWindowFill fires per bulk pop of the windowed scheduler.
	PointWindowFill = faultinject.Register("core.window.fill")
)

// PanicError reports a panic recovered during query evaluation. One
// panicking query — a worker hitting a bug, or an injected fault —
// fails with this error instead of taking the process down; the engine
// remains usable for other queries.
type PanicError struct {
	// Op names the evaluation stage that panicked (e.g. "core.SP",
	// "core.parallel.worker").
	Op string
	// Value is the recovered panic value.
	Value interface{}
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("core: panic during %s: %v", e.Op, e.Value)
}

func newPanicError(op string, v interface{}) *PanicError {
	return &PanicError{Op: op, Value: v, Stack: debug.Stack()}
}

// guard converts a panic on the calling goroutine into a *PanicError.
// Every public evaluation entry point defers it, so the engine API never
// panics on a per-query failure: callers get an error, the process and
// the engine's shared state survive. Named results are zeroed — a
// half-built answer must not escape.
func guard(op string, results *[]Result, err *error) {
	if r := recover(); r != nil {
		*results = nil
		*err = newPanicError(op, r)
	}
}

// recordPartial notes that evaluation stopped early (deadline or
// cancellation) while the candidate with the given score lower bound
// was next. Bounds are non-decreasing along the candidate stream, so
// every place not yet finalized — including the one in hand — scores at
// least bound: it is the Lemma-1-derived floor that makes the returned
// prefix sound (see markExact and DESIGN.md §9).
func recordPartial(stats *Stats, bound float64) {
	stats.Partial = true
	stats.ScoreBound = bound
}

// markExact fills Result.Exact after evaluation. A complete run is
// exact throughout. A partial run guarantees exactly the results whose
// score is strictly below Stats.ScoreBound: no unfinalized place can
// score lower, so those results — a prefix of the score-sorted list —
// occupy the same positions in the true top-k.
func markExact(rs []Result, stats *Stats) {
	for i := range rs {
		rs[i].Exact = !stats.Partial || rs[i].Score < stats.ScoreBound
	}
}
