package core

import (
	"math"
	"sync/atomic"

	"ksp/internal/lru"
)

// looseCache is the engine-level cross-query looseness cache. The paper
// observes (Section 7) that L(Tp) depends only on the place and the
// query keyword set — not on the query location, k, α, or the spatial
// index — so on an immutable dataset it is perfectly reusable across
// queries. Two kinds of facts are stored per (place, term-set) key:
//
//   - exact: the true looseness (possibly +Inf for a place that cannot
//     reach every keyword). An exact hit replaces the BFS entirely.
//   - lower bound: the dynamic bound LB(Tp) reached when a previous
//     construction was aborted by Pruning Rule 2. The bound is a
//     graph-determined fact (Lemma 1: the true looseness is >= LB no
//     matter which threshold caused the abort), so a later query may
//     prune without a BFS whenever its own threshold lw <= LB.
type looseCache struct {
	c *lru.Sharded[looseKey, looseEntry]
	// hits/boundHits/misses aggregate across all queries for /stats
	// (per-query numbers live in Stats).
	hits      atomic.Int64
	boundHits atomic.Int64
	misses    atomic.Int64
}

// looseKey identifies a cached looseness: the place and the canonical
// (sorted, packed) signature of the resolved query term set. The
// signature is the full term list, not a hash — collisions would
// silently corrupt results, so there are none.
type looseKey struct {
	place uint32
	sig   string
}

// looseEntry is the cached fact: the exact looseness, or a lower bound
// on it when exact is false.
type looseEntry struct {
	loose float64
	exact bool
}

func looseHash(k looseKey) uint32 {
	h := k.place*2654435761 + 0x9e3779b9
	for i := 0; i < len(k.sig); i++ {
		h = (h ^ uint32(k.sig[i])) * 16777619
	}
	return h
}

// looseCacheShards balances lock contention against per-shard LRU
// quality for the worker counts a single machine runs.
const looseCacheShards = 16

// EnableLoosenessCache attaches a looseness cache of the given entry
// capacity to the engine (<= 0 selects DefaultLoosenessCacheEntries).
// Safe to call once, before serving queries. Results are unaffected —
// only TQSP constructions are skipped — and the cache is shared by
// WithAlpha clones.
func (e *Engine) EnableLoosenessCache(capacity int) {
	if capacity <= 0 {
		capacity = DefaultLoosenessCacheEntries
	}
	e.loose = &looseCache{
		c: lru.NewSharded[looseKey, looseEntry](looseCacheShards, int64(capacity), nil, looseHash),
	}
}

// DefaultLoosenessCacheEntries is the capacity EnableLoosenessCache
// uses for non-positive arguments.
const DefaultLoosenessCacheEntries = 1 << 16

// CacheStats summarizes the engine's looseness cache for monitoring.
type CacheStats struct {
	// Hits counts exact hits (BFS skipped, exact L returned); BoundHits
	// counts prunes from a stored Rule-2 lower bound; Misses counts
	// lookups that fell through to construction.
	Hits      int64 `json:"hits"`
	BoundHits int64 `json:"boundHits"`
	Misses    int64 `json:"misses"`
	// Entries is the current cached fact count.
	Entries int `json:"entries"`
}

// HitRate returns the fraction of lookups served from the cache.
func (cs CacheStats) HitRate() float64 {
	total := cs.Hits + cs.BoundHits + cs.Misses
	if total == 0 {
		return 0
	}
	return float64(cs.Hits+cs.BoundHits) / float64(total)
}

// CacheStats reports the looseness cache's cumulative counters; ok is
// false when the cache is disabled.
func (e *Engine) CacheStats() (CacheStats, bool) {
	if e.loose == nil {
		return CacheStats{}, false
	}
	return CacheStats{
		Hits:      e.loose.hits.Load(),
		BoundHits: e.loose.boundHits.Load(),
		Misses:    e.loose.misses.Load(),
		Entries:   e.loose.c.Len(),
	}, true
}

// store persists what a construction learned: exact facts overwrite,
// lower bounds only tighten (and never displace an exact fact).
func (lc *looseCache) store(key looseKey, lb float64, exact bool) {
	lc.c.Update(key, func(old looseEntry, ok bool) (looseEntry, bool) {
		if exact {
			return looseEntry{loose: lb, exact: true}, true
		}
		if ok && (old.exact || old.loose >= lb) {
			return old, false
		}
		return looseEntry{loose: lb}, true
	})
}

// semanticPlace is getSemanticPlace behind the looseness cache: an
// exact hit returns the true L(Tp) with no BFS; a stored lower bound
// >= lw prunes with no BFS (sound: the true looseness is >= the bound,
// so the serial algorithm would have discarded the place too); anything
// else falls through to construction and persists what it learned.
// Tree collection bypasses the cache — the tree itself must be built.
func (s *searcher) semanticPlace(p uint32, lw float64) (float64, *Tree) {
	lc := s.e.loose
	if lc == nil || s.collect {
		return s.getSemanticPlace(p, lw)
	}
	key := looseKey{place: p, sig: s.pq.sig}
	if ent, ok := lc.c.Get(key); ok {
		if ent.exact {
			lc.hits.Add(1)
			s.stats.CacheHits++
			s.curSpan.SetStr("cache", "hit")
			return ent.loose, nil
		}
		if ent.loose >= lw {
			lc.boundHits.Add(1)
			s.stats.CacheBoundHits++
			s.stats.PrunedDynamicBound++
			s.curSpan.SetStr("cache", "bound")
			return math.Inf(1), nil
		}
	}
	lc.misses.Add(1)
	s.stats.CacheMisses++
	s.curSpan.SetStr("cache", "miss")
	loose, tree := s.getSemanticPlace(p, lw)
	lc.store(key, s.lastLB, s.lastExact)
	return loose, tree
}
