package core

import (
	"cmp"
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"slices"
	"sync"
	"time"

	"ksp/internal/alpha"
	"ksp/internal/faultinject"
	"ksp/internal/geo"
	"ksp/internal/grid"
	"ksp/internal/invindex"
	"ksp/internal/rdf"
	"ksp/internal/reach"
	"ksp/internal/rtree"
)

// MaxKeywords bounds |q.ψ|; keyword coverage is tracked in a 64-bit mask.
const MaxKeywords = 64

// Engine evaluates kSP queries over one dataset. All fields are read-only
// after construction, so an Engine is safe for concurrent queries.
type Engine struct {
	G    *rdf.Graph
	Tree *rtree.RTree
	Doc  invindex.Index
	// Reach enables Pruning Rule 1 (required by SPP and used by SP).
	Reach *reach.KeywordIndex
	// Alpha enables the α-radius bounds (required by SP).
	Alpha *alpha.Index
	// Grid is an optional alternative spatial source for BSP/SPP
	// (Options.UseGrid); kSP evaluation is orthogonal to the spatial
	// index (Section 7 of the paper), and this makes the claim testable.
	Grid *grid.Grid
	Dir  rdf.Direction
	Rank Ranking

	// pools recycles per-query scratch (dense Mq.ψ arrays, BFS state)
	// across queries and across the workers of one parallel query. A
	// pointer so WithAlpha clones share it (the graph, and hence every
	// scratch size, is identical).
	pools *enginePools
	// loose is the optional cross-query looseness cache
	// (EnableLoosenessCache); shared by WithAlpha clones — L(Tp) depends
	// only on the graph, direction and keyword set, never on α.
	loose *looseCache
	// metrics is the optional cumulative instrument bundle
	// (EnableMetrics); nil keeps query evaluation free of any
	// observability cost. Shared by WithAlpha clones.
	metrics *engineMetrics
	// winTotals accumulates the window scheduler's lifetime counters
	// (WindowStats). A pointer so WithAlpha's `clone := *e` shares it and
	// never copies the atomics.
	winTotals *windowTotals
	// sched accumulates the work-stealing scheduler's lifetime counters
	// and its starvation-feedback depth hint (SchedStats). A pointer for
	// the same WithAlpha-sharing reason as winTotals.
	sched *schedTotals
}

// enginePools recycles allocation-heavy per-query state.
type enginePools struct {
	mq      sync.Pool // *denseMQ
	scratch sync.Pool // *bfsScratch
	// termSeen and vertSeen recycle the small dedup sets of prepare
	// (term-ID space) and the TA loop (vertex-ID space). Two pools
	// because the two ID spaces differ in size and seenSet reallocates
	// on a size change.
	termSeen sync.Pool // *seenSet
	vertSeen sync.Pool // *seenSet
}

func (p *enginePools) getMQ(n int) *denseMQ {
	d, _ := p.mq.Get().(*denseMQ)
	if d == nil {
		d = &denseMQ{} //ksplint:ignore allocbound -- pool-miss refill; amortized across queries
	}
	d.reset(n)
	return d
}

func (p *enginePools) putMQ(d *denseMQ) {
	if d != nil {
		p.mq.Put(d)
	}
}

func (p *enginePools) getScratch(n int) *bfsScratch {
	s, _ := p.scratch.Get().(*bfsScratch)
	if s == nil || len(s.visited) != n {
		s = &bfsScratch{visited: make([]uint32, n)} //ksplint:ignore allocbound -- pool-miss (or graph-size change) refill; amortized
	}
	return s
}

func (p *enginePools) putScratch(s *bfsScratch) {
	if s != nil {
		p.scratch.Put(s)
	}
}

func getSeen(pool *sync.Pool, n int) *seenSet {
	s, _ := pool.Get().(*seenSet)
	if s == nil {
		s = &seenSet{} //ksplint:ignore allocbound -- pool-miss refill; amortized across queries
	}
	s.reset(n)
	return s
}

func putSeen(pool *sync.Pool, s *seenSet) {
	if s != nil {
		pool.Put(s)
	}
}

// seenSet is an epoch-stamped membership set over a dense uint32 ID
// space — the pooled replacement for the per-query map[uint32]bool
// dedup sets: recycling skips both the map allocation and any clearing
// (the epoch bump invalidates every stale stamp at once).
type seenSet struct {
	stamp []uint32
	epoch uint32
}

func (s *seenSet) reset(n int) {
	if len(s.stamp) != n {
		s.stamp = make([]uint32, n)
		s.epoch = 0
	}
	s.epoch++
	if s.epoch == 0 { // stamp wrap: clear once every 2^32 queries
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 1
	}
}

func (s *seenSet) has(id uint32) bool { return s.stamp[id] == s.epoch }
func (s *seenSet) add(id uint32)      { s.stamp[id] = s.epoch }

// denseMQ is the map Mq.ψ (Table 2) materialized as epoch-stamped dense
// arrays indexed by vertex ID: the TQSP hot loop replaces a hash lookup
// per visited vertex with two array reads, and the epoch stamp lets the
// arrays be recycled across queries without clearing.
type denseMQ struct {
	mask  []uint64
	stamp []uint32
	epoch uint32
	count int
}

func (d *denseMQ) reset(n int) {
	if len(d.mask) != n {
		d.mask = make([]uint64, n)
		d.stamp = make([]uint32, n)
		d.epoch = 0
	}
	d.epoch++
	if d.epoch == 0 { // stamp wrap: clear once every 2^32 queries
		for i := range d.stamp {
			d.stamp[i] = 0
		}
		d.epoch = 1
	}
	d.count = 0
}

// or merges bit into v's keyword mask.
func (d *denseMQ) or(v uint32, bit uint64) {
	if d.stamp[v] != d.epoch {
		d.stamp[v] = d.epoch
		d.mask[v] = bit
		d.count++
		return
	}
	d.mask[v] |= bit
}

// get returns v's keyword mask (zero when v matches no query keyword).
func (d *denseMQ) get(v uint32) uint64 {
	if d.stamp[v] == d.epoch {
		return d.mask[v]
	}
	return 0
}

// size returns the number of vertices matching at least one keyword.
func (d *denseMQ) size() int { return d.count }

// spatialSource abstracts GETNEXT: an incremental nearest-place stream.
// Both the R-tree browser and the grid browser satisfy it.
type spatialSource interface {
	Next() (rtree.Item, float64, bool)
	Accesses() int64
}

// source opens the spatial stream chosen by opts.
func (e *Engine) source(q geo.Point, opts Options) (spatialSource, error) {
	if opts.UseGrid {
		if e.Grid == nil {
			return nil, fmt.Errorf("core: Options.UseGrid requires EnableGrid")
		}
		return e.Grid.NewBrowser(q), nil
	}
	return e.Tree.NewBrowser(q), nil
}

// EnableGrid builds the uniform-grid spatial source over the places.
func (e *Engine) EnableGrid(cellsPerAxis int) {
	places := e.G.Places()
	items := make([]grid.Item, len(places))
	for i, p := range places {
		items[i] = grid.Item{ID: p, Loc: e.G.Loc(p)}
	}
	e.Grid = grid.New(items, cellsPerAxis)
}

// NewEngine assembles an engine with the mandatory structures of
// Section 3: the STR-bulk-loaded R-tree over the place vertices and the
// document inverted index. Reachability and α-radius indexes are added
// with EnableReach / EnableAlpha.
func NewEngine(g *rdf.Graph, dir rdf.Direction) *Engine {
	places := g.Places()
	items := make([]rtree.Item, len(places))
	for i, p := range places {
		items[i] = rtree.Item{ID: p, Loc: g.Loc(p)}
	}
	return &Engine{
		G:         g,
		Tree:      rtree.Bulk(items, rtree.DefaultMaxEntries),
		Doc:       invindex.FromGraph(g),
		Dir:       dir,
		Rank:      ProductRanking{},
		pools:     &enginePools{},
		winTotals: &windowTotals{},
		sched:     &schedTotals{},
	}
}

// EnableReach builds the keyword reachability index (Section 4.1).
func (e *Engine) EnableReach() {
	e.Reach = reach.NewKeywordIndex(e.G, e.Dir)
}

// UseDiskDocIndex spills the document inverted index to path and serves
// posting lists from disk per query — the paper's production setting
// ("we choose to follow the setting of commercial search engines, where
// the inverted index is disk-resident"). The caller owns the file's
// lifetime; Close the returned index when the engine is discarded.
func (e *Engine) UseDiskDocIndex(path string) (*invindex.DiskIndex, error) {
	return e.UseDiskDocIndexMode(path, false)
}

// UseDiskDocIndexMode is UseDiskDocIndex with a choice of I/O mode:
// useMmap serves posting lists through a read-only memory mapping
// (falling back to pread where mapping is unavailable).
func (e *Engine) UseDiskDocIndexMode(path string, useMmap bool) (*invindex.DiskIndex, error) {
	mem, ok := e.Doc.(*invindex.MemIndex)
	if !ok {
		return nil, fmt.Errorf("core: document index already replaced")
	}
	if err := mem.WriteFile(path); err != nil {
		return nil, err
	}
	disk, err := invindex.OpenFile(path, useMmap)
	if err != nil {
		return nil, err
	}
	e.Doc = disk
	return disk, nil
}

// EnableAlpha builds the α-radius word neighbourhoods (Section 5).
func (e *Engine) EnableAlpha(alphaRadius int) {
	e.Alpha = alpha.Build(e.G, e.Tree, alphaRadius, e.Dir)
}

// SetAlpha installs a prebuilt α-radius index, e.g. one restored from a
// snapshot. The index's node postings must have been built against an
// R-tree identical to this engine's (same places, same STR bulk loading,
// same fanout) so that node IDs line up; internal/store guarantees this.
func (e *Engine) SetAlpha(ix *alpha.Index) { e.Alpha = ix }

// WithAlpha returns a shallow copy of the engine using a freshly built
// α-radius index with a different radius. All other (immutable) indexes
// are shared — this is how the α-sweep experiment (Figure 6) avoids
// rebuilding the R-tree, document index and reachability labels per α.
func (e *Engine) WithAlpha(alphaRadius int) *Engine {
	clone := *e
	clone.Alpha = alpha.Build(e.G, e.Tree, alphaRadius, e.Dir)
	return &clone
}

// prepQuery is a resolved query: deduped keyword term IDs ordered by
// ascending document frequency (the paper prioritizes infrequent keywords
// in Rule 1), the dense map Mq.ψ from vertices to keyword masks, and the
// raw posting lists. Read-only once prepare returns, so the workers of a
// parallel evaluation share it freely; the engine recycles mq via
// releasePrep.
type prepQuery struct {
	loc      Query
	terms    []uint32
	postings [][]invindex.Posting
	mq       *denseMQ
	full     uint64
	// sig is the canonical (sorted, packed) term-set signature keying the
	// looseness cache; empty when the cache is disabled.
	sig string
	// answerable is false when some keyword is absent from every document;
	// no qualified semantic place can exist then.
	answerable bool
	// qv caches the α-radius query view for terms, loaded at most once
	// per query (SP's stream and the window screens share it). Guarded by
	// qvLoaded, not a mutex: queryView is only called on the query's main
	// goroutine before the pipeline spawns.
	qv       *alpha.QueryView
	qvErr    error
	qvLoaded bool
}

// queryView lazily loads the α-radius view for pq's keyword set,
// returning (nil, nil) when the α index is absent. Call before the
// parallel pipeline spawns; the cached view is read-only afterwards.
func (pq *prepQuery) queryView(e *Engine) (*alpha.QueryView, error) {
	if !pq.qvLoaded {
		pq.qvLoaded = true
		if e.Alpha != nil {
			pq.qv, pq.qvErr = e.Alpha.LoadQuery(pq.terms)
		}
	}
	return pq.qv, pq.qvErr
}

// termSig packs the sorted term IDs into a collision-free string key.
func termSig(terms []uint32) string {
	sorted := append([]uint32(nil), terms...)
	// slices.Sort, not sort.Slice: the latter boxes the slice header
	// into an interface and allocates on every (hot-path) call.
	slices.Sort(sorted)
	buf := make([]byte, 4*len(sorted))
	for i, t := range sorted {
		binary.LittleEndian.PutUint32(buf[4*i:], t)
	}
	return string(buf)
}

// releasePrep returns a prepared query's pooled scratch to the engine.
// The prepQuery must not be used afterwards. Always called after the
// query's pipeline has fully drained (deferred at the algorithm
// function scope), so the α query view can go back to its pool.
func (e *Engine) releasePrep(pq *prepQuery) {
	if pq == nil {
		return
	}
	if pq.mq != nil {
		e.pools.putMQ(pq.mq)
		pq.mq = nil
	}
	if pq.qv != nil {
		pq.qv.Release()
		pq.qv = nil
	}
}

var errTooManyKeywords = fmt.Errorf("core: more than %d query keywords", MaxKeywords)

// prepare resolves keywords and builds Mq.ψ (Table 2 of the paper).
// Keywords pass through the graph's text analyzer, so they normalize
// exactly like the indexed documents (lower-casing, optional stopword
// removal and stemming); a keyword producing several tokens contributes
// each as a query keyword, and a keyword consisting only of stopwords is
// vacuously covered.
func (e *Engine) prepare(q Query) (*prepQuery, error) {
	faultinject.Fire(PointPrepare)
	pq := &prepQuery{loc: q, answerable: true} //ksplint:ignore allocbound -- one per query, inside TestAllocBudget's budget
	seen := getSeen(&e.pools.termSeen, e.G.Vocab.Len())
	for _, kw := range q.Keywords {
		for _, tok := range e.G.Analyze(kw) {
			id, ok := e.G.Vocab.Lookup(tok)
			if !ok {
				pq.answerable = false
				continue
			}
			if seen.has(id) {
				continue
			}
			seen.add(id)
			pq.terms = append(pq.terms, id)
		}
	}
	putSeen(&e.pools.termSeen, seen)
	if len(pq.terms) > MaxKeywords {
		return nil, errTooManyKeywords
	}
	if !pq.answerable {
		return pq, nil
	}
	pq.postings = make([][]invindex.Posting, len(pq.terms))
	for i, t := range pq.terms {
		pl, err := e.Doc.Postings(t, nil)
		if err != nil {
			return nil, err
		}
		if len(pl) == 0 {
			pq.answerable = false
		}
		pq.postings[i] = pl
	}
	if !pq.answerable {
		return pq, nil
	}
	// Infrequent keywords first: cheapest Rule 1 rejections come first.
	order := make([]int, len(pq.terms))
	for i := range order {
		order[i] = i
	}
	slices.SortStableFunc(order, func(a, b int) int { return cmp.Compare(len(pq.postings[a]), len(pq.postings[b])) })
	terms := make([]uint32, len(order))
	posts := make([][]invindex.Posting, len(order))
	for i, o := range order {
		terms[i] = pq.terms[o]
		posts[i] = pq.postings[o]
	}
	pq.terms, pq.postings = terms, posts

	pq.full = (uint64(1) << uint(len(pq.terms))) - 1
	pq.mq = e.pools.getMQ(e.G.NumVertices())
	for i, pl := range pq.postings {
		bit := uint64(1) << uint(i)
		for _, p := range pl {
			pq.mq.or(p.ID, bit)
		}
	}
	if e.loose != nil {
		pq.sig = termSig(pq.terms)
	}
	return pq, nil
}

// numKeywords returns m = |q.ψ| after dedup/resolution.
func (pq *prepQuery) numKeywords() int { return len(pq.terms) }

// topK maintains the result queue Hk: a worst-first heap capped at k.
type topK struct {
	k     int
	items resultHeap
}

// resultHeap is a worst-first binary heap of Result with hand-rolled
// sift methods, for the same reason as spHeap: container/heap boxes
// every pushed element into an interface{}, charging one allocation per
// candidate admitted to Hk. The sift logic mirrors container/heap's
// algorithm exactly (same comparisons, same swaps), so eviction order
// is bit-identical to the old code.
type resultHeap []Result

func (h resultHeap) less(i, j int) bool { // worst (to evict) at the top
	if h[i].Score != h[j].Score {
		return h[i].Score > h[j].Score
	}
	return h[i].Place > h[j].Place
}

func (h *resultHeap) push(r Result) {
	*h = append(*h, r)
	h.up(len(*h) - 1)
}

func (h *resultHeap) pop() Result {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	h.down(0, n)
	r := s[n]
	s[n] = Result{} // clear the Tree pointer so the GC can reclaim it
	*h = s[:n]
	return r
}

func (h resultHeap) up(j int) {
	for j > 0 {
		i := (j - 1) / 2
		if !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (h resultHeap) down(i, n int) {
	for {
		j1 := 2*i + 1
		if j1 >= n {
			return
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h.less(j2, j1) {
			j = j2
		}
		if !h.less(j, i) {
			return
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

//ksplint:ignore allocbound -- one heap per query, inside TestAllocBudget's budget
func newTopK(k int) *topK { return &topK{k: k} }

// theta returns the ranking score of the kth candidate, +Inf while fewer
// than k candidates exist.
func (t *topK) theta() float64 {
	if len(t.items) < t.k {
		return math.Inf(1)
	}
	return t.items[0].Score
}

// add inserts r, evicting the worst candidate beyond k.
func (t *topK) add(r Result) {
	t.items.push(r)
	if len(t.items) > t.k {
		t.items.pop()
	}
}

// sorted returns the candidates by ascending score (ties by place ID).
// The comparison is a total order over distinct places, so the unstable
// sort is deterministic.
func (t *topK) sorted() []Result {
	out := append([]Result(nil), t.items...)
	slices.SortFunc(out, func(a, b Result) int {
		if a.Score != b.Score {
			return cmp.Compare(a.Score, b.Score)
		}
		return cmp.Compare(a.Place, b.Place)
	})
	return out
}

// deadlineFor converts Options.Deadline to an absolute time (zero = none).
func deadlineFor(opts Options) time.Time {
	if opts.Deadline <= 0 {
		return time.Time{}
	}
	return time.Now().Add(opts.Deadline)
}

func expired(deadline time.Time) bool {
	return !deadline.IsZero() && time.Now().After(deadline)
}

// limiter bundles the two early-exit conditions of a query: the
// Options.Deadline budget and Options.Cancel (e.g. an HTTP client
// disconnecting). Loops poll it periodically, exactly like the previous
// deadline-only checks.
type limiter struct {
	deadline time.Time
	cancel   <-chan struct{}
}

func limiterFor(opts Options) limiter {
	return limiter{deadline: deadlineFor(opts), cancel: opts.Cancel}
}

// stop reports whether evaluation must halt, recording the reason.
func (l limiter) stop(stats *Stats) bool {
	if l.cancel != nil {
		select {
		case <-l.cancel:
			stats.Cancelled = true
			return true
		default:
		}
	}
	if expired(l.deadline) {
		stats.TimedOut = true
		return true
	}
	return false
}

func popcount(x uint64) int { return bits.OnesCount64(x) }
