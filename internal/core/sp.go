package core

import (
	"container/heap"
	"fmt"
	"math"
	"time"

	"ksp/internal/rtree"
)

// SP evaluates q with the full Semantic Place retrieval algorithm
// (Algorithm 4): R-tree entries — places and nodes alike — are processed
// in ascending order of their α-bounds on the ranking score (Lemmas 3 and
// 5) instead of pure spatial distance; entries whose bound reaches θ are
// pruned (Pruning Rules 3 and 4); surviving places still pass through
// Pruning Rules 1 and 2. Requires EnableAlpha (and EnableReach for
// Rule 1).
func (e *Engine) SP(q Query, opts Options) ([]Result, *Stats, error) {
	start := time.Now()
	stats := &Stats{}
	if e.Alpha == nil {
		return nil, stats, fmt.Errorf("core: SP requires the α-radius index (EnableAlpha)")
	}
	pq, err := e.prepare(q)
	if err != nil {
		return nil, stats, err
	}
	hk := newTopK(q.K)
	if pq.answerable && q.K > 0 {
		if err := e.spLoop(pq, opts, hk, stats); err != nil {
			return nil, stats, err
		}
	}
	results := hk.sorted()
	stats.OtherTime = time.Since(start) - stats.SemanticTime
	return results, stats, nil
}

// spEntry is a queue element: an R-tree node or a place, keyed by its
// α-bound on the ranking score.
type spEntry struct {
	bound float64
	dist  float64
	node  *rtree.Node // nil for places
	place uint32
}

type spHeap []spEntry

func (h spHeap) Len() int { return len(h) }
func (h spHeap) Less(i, j int) bool {
	if h[i].bound != h[j].bound {
		return h[i].bound < h[j].bound
	}
	// Deterministic tie-break: places before nodes, then by ID.
	ni, nj := h[i].node, h[j].node
	if (ni == nil) != (nj == nil) {
		return ni == nil
	}
	if ni == nil {
		return h[i].place < h[j].place
	}
	return ni.ID < nj.ID
}
func (h spHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *spHeap) Push(x interface{}) { *h = append(*h, x.(spEntry)) }
func (h *spHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

func (e *Engine) spLoop(pq *prepQuery, opts Options, hk *topK, stats *Stats) error {
	qv, err := e.Alpha.LoadQuery(pq.terms)
	if err != nil {
		return err
	}
	s := newSearcher(e, pq, stats, opts.CollectTrees)
	deadline := deadlineFor(opts)
	qloc := pq.loc.Loc

	var pqueue spHeap
	if e.Tree.Len() > 0 {
		root := e.Tree.Root()
		d := root.Rect.MinDist(qloc)
		pqueue = append(pqueue, spEntry{bound: e.Rank.Score(qv.NodeBound(root.ID), d), dist: d, node: root})
	}
	heap.Init(&pqueue)

	for i := 0; pqueue.Len() > 0; i++ {
		ent := heap.Pop(&pqueue).(spEntry)
		// Termination (Algorithm 4 line 9): every remaining entry's bound
		// is at least ent.bound.
		if ent.bound >= hk.theta() {
			return nil
		}
		if i%64 == 0 && expired(deadline) {
			stats.TimedOut = true
			return nil
		}

		if ent.node == nil {
			stats.PlacesRetrieved++
			if e.Reach != nil && !opts.NoRule1 && e.unqualified(ent.place, pq, stats) {
				continue
			}
			lw := math.Inf(1)
			if !opts.NoRule2 {
				lw = e.Rank.LoosenessThreshold(hk.theta(), ent.dist)
			}
			semStart := time.Now()
			loose, tree := s.getSemanticPlace(ent.place, lw)
			stats.SemanticTime += time.Since(semStart)
			if math.IsInf(loose, 1) {
				continue
			}
			f := e.Rank.Score(loose, ent.dist)
			if f < hk.theta() {
				hk.add(Result{Place: ent.place, Looseness: loose, Dist: ent.dist, Score: f, Tree: tree})
			}
			continue
		}

		// Node: expand children under Pruning Rules 3 and 4.
		stats.RTreeNodeAccesses++
		n := ent.node
		theta := hk.theta()
		if n.Leaf {
			for _, it := range n.Items {
				d := qloc.Dist(it.Loc)
				if opts.MaxDist > 0 && d > opts.MaxDist {
					continue // outside the query radius
				}
				fb := e.Rank.Score(qv.PlaceBound(it.ID), d)
				if fb < theta {
					heap.Push(&pqueue, spEntry{bound: fb, dist: d, place: it.ID})
				} else {
					stats.PrunedAlphaPlaces++ // Pruning Rule 3
				}
			}
		} else {
			for _, ch := range n.Children {
				d := ch.Rect.MinDist(qloc)
				if opts.MaxDist > 0 && d > opts.MaxDist {
					continue // whole subtree outside the radius
				}
				fb := e.Rank.Score(qv.NodeBound(ch.ID), d)
				if fb < theta {
					heap.Push(&pqueue, spEntry{bound: fb, dist: d, node: ch})
				} else {
					stats.PrunedAlphaNodes++ // Pruning Rule 4
				}
			}
		}
	}
	return nil
}
