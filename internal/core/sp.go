package core

import (
	"container/heap"
	"fmt"
	"time"

	"ksp/internal/rtree"
)

// SP evaluates q with the full Semantic Place retrieval algorithm
// (Algorithm 4): R-tree entries — places and nodes alike — are processed
// in ascending order of their α-bounds on the ranking score (Lemmas 3 and
// 5) instead of pure spatial distance; entries whose bound reaches θ are
// pruned (Pruning Rules 3 and 4); surviving places still pass through
// Pruning Rules 1 and 2. Requires EnableAlpha (and EnableReach for
// Rule 1).
func (e *Engine) SP(q Query, opts Options) (results []Result, stats *Stats, err error) {
	start := time.Now()
	stats = &Stats{}
	defer e.noteOutcome(algoSP, stats, &err)
	if e.Alpha == nil {
		return nil, stats, fmt.Errorf("core: SP requires the α-radius index (EnableAlpha)")
	}
	defer guard("core.SP", &results, &err)
	root := opts.Trace.Root()
	root.SetStr("algo", "SP")
	prep := root.Child("prepare")
	pq, err := e.prepare(q)
	prep.End()
	if err != nil {
		return nil, stats, err
	}
	defer e.releasePrep(pq)
	hk := newTopK(q.K)
	if pq.answerable && q.K > 0 {
		if err := e.spLoop(pq, opts, hk, stats); err != nil {
			return nil, stats, err
		}
	}
	results = hk.sorted()
	markExact(results, stats)
	finishStats(stats, time.Since(start))
	return results, stats, nil
}

// spEntry is a queue element: an R-tree node or a place, keyed by its
// α-bound on the ranking score.
type spEntry struct {
	bound float64
	dist  float64
	node  *rtree.Node // nil for places
	place uint32
}

type spHeap []spEntry

func (h spHeap) Len() int { return len(h) }
func (h spHeap) Less(i, j int) bool {
	if h[i].bound != h[j].bound {
		return h[i].bound < h[j].bound
	}
	// Deterministic tie-break: places before nodes, then by ID.
	ni, nj := h[i].node, h[j].node
	if (ni == nil) != (nj == nil) {
		return ni == nil
	}
	if ni == nil {
		return h[i].place < h[j].place
	}
	return ni.ID < nj.ID
}
func (h spHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *spHeap) Push(x interface{}) { *h = append(*h, x.(spEntry)) }
func (h *spHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

func (e *Engine) spLoop(pq *prepQuery, opts Options, hk *topK, stats *Stats) error {
	qv, err := pq.queryView(e)
	if err != nil {
		return err
	}
	qloc := pq.loc.Loc
	mk := func(st *Stats, theta func() float64) (candSource, error) {
		src := &spSource{e: e, qv: qv, theta: theta, qloc: qloc, maxDist: opts.MaxDist, stats: st}
		if e.Tree.Len() > 0 {
			root := e.Tree.Root()
			d := root.Rect.MinDist(qloc)
			src.pqueue = append(src.pqueue, spEntry{bound: e.Rank.Score(qv.NodeBound(root.ID), d), dist: d, node: root})
		}
		heap.Init(&src.pqueue)
		return src, nil
	}
	return e.run(mk, pq, opts, hk, stats, e.Reach != nil && !opts.NoRule1, !opts.NoRule2)
}
