package core

import (
	"fmt"
	"time"

	"ksp/internal/rtree"
)

// SP evaluates q with the full Semantic Place retrieval algorithm
// (Algorithm 4): R-tree entries — places and nodes alike — are processed
// in ascending order of their α-bounds on the ranking score (Lemmas 3 and
// 5) instead of pure spatial distance; entries whose bound reaches θ are
// pruned (Pruning Rules 3 and 4); surviving places still pass through
// Pruning Rules 1 and 2. Requires EnableAlpha (and EnableReach for
// Rule 1).
//
//ksplint:hotpath
func (e *Engine) SP(q Query, opts Options) (results []Result, stats *Stats, err error) {
	start := time.Now()
	stats = &Stats{} //ksplint:ignore allocbound -- API contract: the caller owns the returned Stats
	defer e.noteOutcome(algoSP, stats, &err)
	if e.Alpha == nil {
		return nil, stats, fmt.Errorf("core: SP requires the α-radius index (EnableAlpha)")
	}
	defer guard("core.SP", &results, &err)
	root := opts.Trace.Root()
	root.SetStr("algo", "SP")
	prep := root.Child("prepare")
	pq, err := e.prepare(q)
	prep.End()
	if err != nil {
		return nil, stats, err
	}
	defer e.releasePrep(pq)
	hk := newTopK(q.K)
	if pq.answerable && q.K > 0 {
		if err := e.spLoop(pq, opts, hk, stats); err != nil {
			return nil, stats, err
		}
	}
	results = hk.sorted()
	markExact(results, stats)
	finishStats(stats, time.Since(start))
	return results, stats, nil
}

// spEntry is a queue element: an R-tree node or a place, keyed by its
// α-bound on the ranking score.
type spEntry struct {
	bound float64
	dist  float64
	node  *rtree.Node // nil for places
	place uint32
}

// spHeap is a binary min-heap of spEntry with hand-rolled sift methods:
// container/heap boxes every pushed element into an interface{}, which
// made each SP enqueue an allocation — the dominant per-query cost once
// the query view went flat. The sift logic mirrors container/heap's
// algorithm exactly (same comparisons, same swaps), so the pop order —
// and therefore the candidate stream — is bit-identical to the old code.
type spHeap []spEntry

func (h spHeap) Len() int { return len(h) }
func (h spHeap) less(i, j int) bool {
	if h[i].bound != h[j].bound {
		return h[i].bound < h[j].bound
	}
	// Deterministic tie-break: places before nodes, then by ID.
	ni, nj := h[i].node, h[j].node
	if (ni == nil) != (nj == nil) {
		return ni == nil
	}
	if ni == nil {
		return h[i].place < h[j].place
	}
	return ni.ID < nj.ID
}

func (h *spHeap) push(e spEntry) {
	*h = append(*h, e)
	h.up(len(*h) - 1)
}

func (h *spHeap) pop() spEntry {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	h.down(0, n)
	e := s[n]
	s[n] = spEntry{} // clear the node pointer so the GC can reclaim subtrees
	*h = s[:n]
	return e
}

func (h spHeap) up(j int) {
	for j > 0 {
		i := (j - 1) / 2
		if !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (h spHeap) down(i, n int) {
	for {
		j1 := 2*i + 1
		if j1 >= n {
			return
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h.less(j2, j1) {
			j = j2
		}
		if !h.less(j, i) {
			return
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

func (e *Engine) spLoop(pq *prepQuery, opts Options, hk *topK, stats *Stats) error {
	qv, err := pq.queryView(e)
	if err != nil {
		return err
	}
	qloc := pq.loc.Loc
	mk := func(st *Stats, theta func() float64) (candSource, error) {
		src := &spSource{e: e, qv: qv, theta: theta, qloc: qloc, maxDist: opts.MaxDist, stats: st}
		if e.Tree.Len() > 0 {
			root := e.Tree.Root()
			d := root.Rect.MinDist(qloc)
			src.pqueue.push(spEntry{bound: e.Rank.Score(qv.NodeBound(root.ID), d), dist: d, node: root})
		}
		return src, nil
	}
	return e.run(mk, pq, opts, hk, stats, e.Reach != nil && !opts.NoRule1, !opts.NoRule2)
}
