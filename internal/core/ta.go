package core

import (
	"container/heap"
	"math"
	"time"

	"ksp/internal/rdf"
)

// TA evaluates q with the hybrid top-k aggregation baseline of
// Section 6.2.6: one ranked list supplies qualified semantic places in
// increasing looseness (an incremental bottom-up keyword-first search in
// the style of [43]), the other supplies places in increasing spatial
// distance (R-tree nearest-neighbour search). Fagin's threshold algorithm
// combines them: each sorted access completes the other attribute on the
// fly, and search stops when the kth candidate's score reaches
// τ = f(L_last, S_last).
func (e *Engine) TA(q Query, opts Options) (results []Result, stats *Stats, err error) {
	start := time.Now()
	stats = &Stats{}
	defer e.noteOutcome(algoTA, stats, &err)
	defer guard("core.TA", &results, &err)
	root := opts.Trace.Root()
	root.SetStr("algo", "TA")
	prep := root.Child("prepare")
	pq, err := e.prepare(q)
	prep.End()
	if err != nil {
		return nil, stats, err
	}
	defer e.releasePrep(pq)
	hk := newTopK(q.K)
	if pq.answerable && q.K > 0 {
		e.taLoop(pq, opts, hk, stats)
	}
	results = hk.sorted()
	markExact(results, stats)
	finishStats(stats, time.Since(start))
	return results, stats, nil
}

func (e *Engine) taLoop(pq *prepQuery, opts Options, hk *topK, stats *Stats) {
	root := opts.Trace.Root()
	s := newSearcher(e, pq, stats, opts.CollectTrees)
	defer s.release()
	lim := limiterFor(opts)
	// One span covers the looseness-ordered list (built here, consumed
	// throughout the loop); spatial candidates get individual spans.
	lspan := root.Child("loose-stream")
	defer lspan.End()
	ls := newLooseStream(e, pq, stats)
	br := e.Tree.NewBrowser(pq.loc.Loc)
	defer func() { stats.RTreeNodeAccesses += br.NodeAccesses }()

	seen := getSeen(&e.pools.vertSeen, e.G.NumVertices())
	defer putSeen(&e.pools.vertSeen, seen)
	lLast := math.Inf(-1) // last looseness from the keyword-first list
	sLast := math.Inf(-1) // last distance from the spatial list
	looseDone, spatialDone := false, false

	score := func(p uint32, loose, dist float64, tree *Tree) {
		if seen.has(p) {
			return
		}
		seen.add(p)
		if opts.MaxDist > 0 && dist > opts.MaxDist {
			return // outside the query radius
		}
		if f := e.Rank.Score(loose, dist); f < hk.theta() {
			hk.add(Result{Place: p, Looseness: loose, Dist: dist, Score: f, Tree: tree})
		}
	}

	for i := 0; !(looseDone && spatialDone); i++ {
		if i%16 == 0 && lim.stop(stats) {
			// TA's threshold τ = f(L_last, S_last) lower-bounds every
			// unseen place; with no τ yet, nothing is guaranteed (bound 0
			// leaves every result flagged degraded).
			tau := 0.0
			if lLast > math.Inf(-1) && sLast > math.Inf(-1) {
				tau = e.Rank.Score(lLast, sLast)
			}
			recordPartial(stats, tau)
			return
		}
		// Sorted access on the looseness list; spatial distance is the
		// on-the-fly random access.
		if !looseDone {
			semStart := time.Now()
			p, loose, ok := ls.next()
			stats.SemanticTime += time.Since(semStart)
			if !ok {
				// All qualified places enumerated: the top-k is final.
				return
			}
			lLast = loose
			score(p, loose, pq.loc.Loc.Dist(e.G.Loc(p)), nil)
		}
		// Sorted access on the spatial list; looseness via Algorithm 2.
		if !spatialDone {
			it, dist, ok := br.Next()
			if !ok {
				// Every place inspected: the top-k is final.
				return
			}
			if opts.MaxDist > 0 && dist > opts.MaxDist {
				// The stream is distance-ordered: every place within the
				// radius has been seen, so the top-k is final.
				return
			}
			sLast = dist
			stats.PlacesRetrieved++
			if !seen.has(it.ID) {
				cs := root.Child("candidate")
				cs.SetInt("place", int64(it.ID))
				cs.SetFloat("dist", dist)
				s.curSpan = cs
				semStart := time.Now()
				loose, tree := s.semanticPlace(it.ID, math.Inf(1))
				stats.SemanticTime += time.Since(semStart)
				s.curSpan = nil
				cs.End()
				if !math.IsInf(loose, 1) {
					score(it.ID, loose, dist, tree)
				} else {
					seen.add(it.ID)
				}
			}
		}
		// TA termination: unseen places have L >= lLast and S >= sLast,
		// hence f >= τ by monotonicity.
		if lLast > math.Inf(-1) && sLast > math.Inf(-1) {
			if hk.theta() <= e.Rank.Score(lLast, sLast) {
				return
			}
		}
	}
}

// looseStream enumerates qualified semantic places in non-decreasing
// looseness via a level-synchronous multi-source BFS per keyword, run
// backwards (the keyword occurrences flow toward potential roots). A place
// completing in round ℓ has max_i dg = ℓ, so after round ℓ every candidate
// with L ≤ ℓ+1 can be emitted: later completions have L ≥ ℓ+2.
type looseStream struct {
	e     *Engine
	pq    *prepQuery
	stats *Stats

	frontiers [][]uint32
	visited   [][]bool
	sumDist   []int32
	mask      []uint64

	cand  candHeap
	level int
	done  bool
}

type candEntry struct {
	place uint32
	loose float64
}

type candHeap []candEntry

func (h candHeap) Len() int { return len(h) }
func (h candHeap) Less(i, j int) bool {
	if h[i].loose != h[j].loose {
		return h[i].loose < h[j].loose
	}
	return h[i].place < h[j].place
}
func (h candHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x interface{}) { *h = append(*h, x.(candEntry)) }
func (h *candHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

func newLooseStream(e *Engine, pq *prepQuery, stats *Stats) *looseStream {
	n := e.G.NumVertices()
	m := pq.numKeywords()
	ls := &looseStream{
		e:         e,
		pq:        pq,
		stats:     stats,
		frontiers: make([][]uint32, m),
		visited:   make([][]bool, m),
		sumDist:   make([]int32, n),
		mask:      make([]uint64, n),
	}
	for i := 0; i < m; i++ {
		ls.visited[i] = make([]bool, n)
		for _, post := range pq.postings[i] {
			if !ls.visited[i][post.ID] {
				ls.visited[i][post.ID] = true
				ls.frontiers[i] = append(ls.frontiers[i], post.ID)
			}
		}
	}
	// Round 0: the posting vertices themselves (distance 0).
	for i := 0; i < m; i++ {
		for _, v := range ls.frontiers[i] {
			ls.reach(i, v, 0)
		}
	}
	return ls
}

// reach records that keyword i first reaches v at distance d.
func (ls *looseStream) reach(i int, v uint32, d int) {
	ls.stats.BFSVertexVisits++
	ls.sumDist[v] += int32(d)
	ls.mask[v] |= 1 << uint(i)
	if ls.mask[v] == ls.pq.full && ls.e.G.IsPlace(v) {
		heap.Push(&ls.cand, candEntry{place: v, loose: 1 + float64(ls.sumDist[v])})
	}
}

// next returns the next qualified place in non-decreasing looseness.
func (ls *looseStream) next() (uint32, float64, bool) {
	for {
		// Emit everything provably minimal at the current level.
		if ls.cand.Len() > 0 && (ls.done || ls.cand[0].loose <= float64(ls.level+1)) {
			c := heap.Pop(&ls.cand).(candEntry)
			return c.place, c.loose, true
		}
		if ls.done {
			return 0, 0, false
		}
		ls.expand()
	}
}

// expand advances every keyword BFS by one level.
func (ls *looseStream) expand() {
	g := ls.e.G
	dir := ls.e.Dir
	ls.level++
	anyAlive := false
	for i := range ls.frontiers {
		cur := ls.frontiers[i]
		if len(cur) == 0 {
			continue
		}
		var next []uint32
		push := func(w uint32) {
			if !ls.visited[i][w] {
				ls.visited[i][w] = true
				next = append(next, w)
				ls.reach(i, w, ls.level)
			}
		}
		for _, v := range cur {
			// Reverse traversal: the root reaches keywords along Dir, so
			// keywords flow to roots against it.
			if dir == rdf.Outgoing || dir == rdf.Undirected {
				for _, w := range g.In(v) {
					push(w)
				}
			}
			if dir == rdf.Incoming || dir == rdf.Undirected {
				for _, w := range g.Out(v) {
					push(w)
				}
			}
		}
		ls.frontiers[i] = next
		if len(next) > 0 {
			anyAlive = true
		}
	}
	if !anyAlive {
		ls.done = true
	}
}
