package core

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"ksp/internal/faultinject"
)

// atomicFloat64 is the pipeline's shared θ: written only by the
// finalizer (after each top-k insertion), read by the producer and the
// workers. θ only decreases, so any stale read is an upper bound on the
// exact serial θ — the soundness hinge of DESIGN.md §8.
type atomicFloat64 struct{ bits atomic.Uint64 }

func (a *atomicFloat64) store(v float64) { a.bits.Store(math.Float64bits(v)) }
func (a *atomicFloat64) load() float64   { return math.Float64frombits(a.bits.Load()) }

// candidate is one place the algorithm considers, produced in the serial
// algorithm's order. bound is the pop-time lower bound on the score of
// this and every later candidate: MinScore(dist) for the
// distance-ordered stream (BSP/SPP), the α-bound f(λ(p), S) for SP. The
// remaining fields are filled by the worker that evaluates it; ready is
// closed when they are valid.
type candidate struct {
	place uint32
	dist  float64
	bound float64

	loose  float64
	tree   *Tree
	pruned bool  // rejected by Pruning Rule 1
	err    error // worker panic, forwarded instead of crashing
	ready  chan struct{}
}

// candSource yields candidates in the serial algorithm's order. next
// returns false when the stream is exhausted or provably beyond any
// possible result; close flushes access counters into the source's
// Stats. A source is driven by exactly one goroutine.
type candSource interface {
	next() (candidate, bool)
	close()
}

// sourceFactory builds a candSource writing its counters to st and
// reading the pruning threshold from theta — hk.theta in a serial run,
// the shared atomic in a parallel one.
type sourceFactory func(st *Stats, theta func() float64) (candSource, error)

// run evaluates one prepared query through the candidate pipeline,
// serial or parallel per opts.Parallelism. rule1/rule2 select which
// pruning rules the consumer applies.
func (e *Engine) run(mk sourceFactory, pq *prepQuery, opts Options, hk *topK, stats *Stats, rule1, rule2 bool) error {
	// Windowed scheduling (DESIGN.md §11) wraps the candidate source;
	// Options.Window == 1 bypasses the layer entirely, reproducing the
	// classic loop bit-for-bit. With a window, Rule 1 moves into the
	// fill-time screens, so the consumer loops must not re-apply it.
	if w, adaptive := resolveWindow(opts); w != 1 {
		mk = e.windowFactory(mk, pq, w, adaptive, rule1, rule2)
		rule1 = false
	}
	if w := opts.workers(); w > 1 {
		return e.runParallel(mk, pq, opts, hk, stats, w, rule1, rule2)
	}
	return e.runSerial(mk, pq, opts, hk, stats, rule1, rule2)
}

// runSerial is the classic evaluation loop shared by BSP, SPP and SP:
// pop the next candidate, stop when its bound reaches θ (no later
// candidate can improve the top-k), otherwise apply the selected pruning
// rules, construct the TQSP, and offer the result to Hk.
func (e *Engine) runSerial(mk sourceFactory, pq *prepQuery, opts Options, hk *topK, stats *Stats, rule1, rule2 bool) error {
	root := opts.Trace.Root()
	src, err := mk(stats, hk.theta)
	if err != nil {
		return err
	}
	defer src.close()
	s := newSearcher(e, pq, stats, opts.CollectTrees)
	defer s.release()
	lim := limiterFor(opts)

	for {
		cand, ok := src.next()
		if !ok {
			return nil
		}
		// Termination: bounds are non-decreasing along the stream.
		if cand.bound >= hk.theta() {
			return nil
		}
		stats.PlacesRetrieved++
		// The deadline/cancel poll is per candidate: each one costs a
		// TQSP construction, so the time.Now is noise, and checking
		// before the expensive work keeps the overshoot at one BFS.
		if lim.stop(stats) {
			recordPartial(stats, cand.bound)
			return nil
		}
		faultinject.Fire(PointSerialCandidate)
		cs := root.Child("candidate")
		cs.SetInt("place", int64(cand.place))
		cs.SetFloat("dist", cand.dist)
		if rule1 && e.unqualified(cand.place, pq, stats) {
			cs.SetStr("pruned", "rule1")
			cs.End()
			continue
		}
		lw := math.Inf(1)
		if rule2 {
			lw = e.Rank.LoosenessThreshold(hk.theta(), cand.dist)
		}
		s.curSpan = cs
		semStart := time.Now()
		loose, tree := s.semanticPlace(cand.place, lw)
		stats.SemanticTime += time.Since(semStart)
		s.curSpan = nil
		if math.IsInf(loose, 1) {
			cs.SetStr("outcome", "rejected")
			cs.End()
			continue
		}
		if f := e.Rank.Score(loose, cand.dist); f < hk.theta() {
			hk.add(Result{Place: cand.place, Looseness: loose, Dist: cand.dist, Score: f, Tree: tree})
			cs.SetStr("outcome", "accepted")
		} else {
			cs.SetStr("outcome", "below-threshold")
		}
		cs.End()
	}
}

// runParallel evaluates the query with a three-stage pipeline that
// returns results bit-identical to runSerial (the argument is laid out
// in DESIGN.md §8; the scheduler in §13):
//
//	producer  — drives the candidate source in serial order, stopping
//	            early when a bound reaches the (stale) shared θ, and
//	            routes each candidate into a per-worker bounded deque;
//	workers   — evaluate candidates concurrently: Rule 1, then TQSP
//	            construction under the Rule-2 threshold derived from the
//	            shared θ, which is always >= the exact serial threshold,
//	            so speculative work can be wasted but never wrong. An
//	            idle worker steals from the busiest peer's deque — which
//	            candidate runs on which worker is immaterial because the
//	            next stage re-serializes every decision;
//	finalizer — this goroutine: consumes candidates in production order,
//	            re-applies the exact termination and insertion checks
//	            against the true Hk, and publishes θ to the atomic.
func (e *Engine) runParallel(mk sourceFactory, pq *prepQuery, opts Options, hk *topK, stats *Stats, workers int, rule1, rule2 bool) error {
	root := opts.Trace.Root()
	theta := &atomicFloat64{}
	theta.store(math.Inf(1))

	prodStats := &Stats{}
	src, err := mk(prodStats, theta.load)
	if err != nil {
		return err
	}

	depth := e.resolveDepth(opts, workers)
	deques := newStealDeques(workers, depth)
	ordered := make(chan *candidate, depth*workers)
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }
	pipe := &pipeFailure{}
	pipeStart := time.Now()

	// Producer. Candidates enter a deque before ordered, so every
	// candidate the finalizer waits on is guaranteed to reach a worker. A
	// panic in the candidate source fails this query, not the process:
	// the deferred closes double as the shutdown signal.
	go func() {
		ps := root.Child("produce")
		var produced int64
		defer func() { ps.SetInt("candidates", produced); ps.End() }()
		defer deques.closeAll()
		defer close(ordered)
		defer func() {
			if r := recover(); r != nil {
				pipe.fail(newPanicError("core.parallel.producer", r))
				halt()
			}
		}()
		for {
			faultinject.Fire(PointProducer)
			cand, ok := src.next()
			if !ok {
				return
			}
			// Speculation cut: bounds are non-decreasing, so once one
			// reaches even the stale θ (>= exact θ), no later candidate
			// can be added and the exact finalizer would stop here too.
			if cand.bound >= theta.load() {
				return
			}
			c := new(candidate)
			*c = cand
			c.ready = make(chan struct{})
			produced++
			if !deques.dispatch(c, stop) {
				return
			}
			select {
			case ordered <- c:
			case <-stop:
				return
			}
		}
	}()

	// Workers. Each owns one padded slot (Stats + scheduler counters);
	// slots are written by exactly one worker, so the padding is what
	// keeps the per-candidate counter increments off shared cache lines.
	var wg sync.WaitGroup
	slots := make([]paddedSlot, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			slot := &slots[w].workerSlot
			ws := &slot.stats
			defer wg.Done()
			wspan := root.Child("worker")
			wspan.SetInt("idx", int64(w))
			defer func() {
				wspan.SetInt("steals", slot.steals)
				wspan.SetInt("ownPops", slot.ownPops)
				wspan.SetInt("idleMicros", slot.idle.Microseconds())
				wspan.End()
			}()
			// cur is the candidate taken from a deque whose ready channel
			// has not closed yet; the recovery path must close it, or the
			// finalizer would block forever on a candidate no worker holds.
			var cur *candidate
			defer func() {
				// Per-candidate panics are converted inside evalCandidate;
				// this catches a panic outside that window (e.g. searcher
				// setup). The dying worker must keep draining the deques —
				// every peer may be dying too — closing every ready it
				// takes, or the finalizer would block forever.
				if r := recover(); r != nil {
					pipe.fail(newPanicError("core.parallel.worker", r))
					halt()
					if cur != nil {
						close(cur.ready)
					}
					for {
						c, _, ok := deques.acquire(w, stop, slot)
						if !ok {
							return
						}
						close(c.ready)
					}
				}
			}()
			s := newSearcher(e, pq, ws, opts.CollectTrees)
			defer s.release()
			if rule2 {
				s.liveTheta = theta
			}
			for {
				c, stolen, ok := deques.acquire(w, stop, slot)
				if !ok {
					return
				}
				cur = c
				select {
				case <-stop:
					// Finalizer gave up; it no longer reads results, but
					// ready must still close so nothing can block on it.
					close(c.ready)
					cur = nil
					continue
				default:
				}
				cs := wspan.Child("candidate")
				cs.SetInt("place", int64(c.place))
				cs.SetFloat("dist", c.dist)
				if stolen {
					cs.SetStr("via", "steal")
				}
				s.curSpan = cs
				e.evalCandidate(s, c, rule1, rule2, theta, ws)
				s.curSpan = nil
				if c.pruned {
					cs.SetStr("pruned", "rule1")
				}
				cs.End()
				close(c.ready)
				cur = nil
			}
		}(w)
	}

	// Finalizer: strictly in production order, so every θ a worker ever
	// observes derives from a finalized prefix of earlier candidates. It
	// runs on the caller's goroutine but inside its own recovery scope:
	// a finalizer panic must still halt and drain the pipeline before
	// the error surfaces, or producer and workers would leak.
	lim := limiterFor(opts)
	fin := root.Child("finalize")
	qerr := func() (err error) {
		defer fin.End()
		defer func() {
			if r := recover(); r != nil {
				err = newPanicError("core.parallel.finalizer", r)
			}
		}()
		terminated := false
		for c := range ordered {
			if terminated {
				continue // drain so the producer can unblock and exit
			}
			<-c.ready
			if c.err != nil {
				// A worker panicked on this candidate; fail the query but
				// keep draining so the pipeline shuts down cleanly.
				err = c.err
				terminated = true
				halt()
				continue
			}
			faultinject.Fire(PointFinalizer)
			if c.bound >= hk.theta() {
				terminated = true
				halt()
				continue
			}
			stats.PlacesRetrieved++
			if lim.stop(stats) {
				recordPartial(stats, c.bound)
				terminated = true
				halt()
				continue
			}
			if c.pruned || math.IsInf(c.loose, 1) {
				continue
			}
			// The worker ran under a stale (looser) threshold; the exact
			// insertion check happens here, against the true Hk.
			if f := e.Rank.Score(c.loose, c.dist); f < hk.theta() {
				hk.add(Result{Place: c.place, Looseness: c.loose, Dist: c.dist, Score: f, Tree: c.tree})
				theta.store(hk.theta())
			}
		}
		return err
	}()
	halt()
	// Drain whatever the finalizer left behind (it drains fully on the
	// normal path; after a finalizer panic candidates may remain).
	for range ordered {
	}
	wg.Wait()
	src.close()

	var steals, ownPops int64
	var idle time.Duration
	for i := range slots {
		slot := &slots[i].workerSlot
		stats.Add(&slot.stats)
		steals += slot.steals
		ownPops += slot.ownPops
		idle += slot.idle
	}
	stats.Steals += steals
	stats.OwnPops += ownPops
	stats.WorkerIdle += idle
	// Worker stats may carry TimedOut/Cancelled only via Add's flag merge;
	// they never set them — keep the flags the finalizer recorded.
	stats.Add(prodStats)

	wall := time.Since(pipeStart)
	if st := e.sched; st != nil {
		st.queries.Add(1)
		st.steals.Add(steals)
		st.ownPops.Add(ownPops)
		st.idleNanos.Add(int64(idle))
	}
	if opts.PipelineDepth <= 0 {
		e.tuneDepth(depth, workers, wall, idle)
	}
	e.noteSched(depth, idle)
	if qerr == nil {
		qerr = pipe.get()
	}
	return qerr
}

// pipeFailure records the first asynchronous pipeline error (a producer
// or worker goroutine panic) for the finalizer to return.
type pipeFailure struct {
	mu  sync.Mutex
	err error
}

func (p *pipeFailure) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

func (p *pipeFailure) get() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// evalCandidate is the worker body: Pruning Rule 1, then TQSP
// construction under the Rule-2 threshold from the shared θ. A panic —
// a bug in the hot path or an injected fault — is captured into the
// candidate and forwarded to the finalizer, failing only this query.
func (e *Engine) evalCandidate(s *searcher, c *candidate, rule1, rule2 bool, theta *atomicFloat64, ws *Stats) {
	defer func() {
		if r := recover(); r != nil {
			c.err = newPanicError("core.parallel.worker", r)
		}
	}()
	faultinject.Fire(PointWorker)
	if rule1 && e.unqualified(c.place, s.pq, ws) {
		c.pruned = true
		return
	}
	lw := math.Inf(1)
	if rule2 {
		lw = e.Rank.LoosenessThreshold(theta.load(), c.dist)
	}
	s.liveDist = c.dist
	semStart := time.Now()
	c.loose, c.tree = s.semanticPlace(c.place, lw)
	ws.SemanticTime += time.Since(semStart)
}
