package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"ksp/internal/gen"
	"ksp/internal/geo"
	"ksp/internal/rdf"
)

// bruteForce computes the exact top-k by running an unbounded BFS from
// every place: the reference the four algorithms must agree with.
func bruteForce(e *Engine, q Query) []Result {
	terms := make([]uint32, 0, len(q.Keywords))
	seen := map[uint32]bool{}
	for _, kw := range q.Keywords {
		id, ok := e.G.Vocab.Lookup(kw)
		if !ok {
			return nil
		}
		if !seen[id] {
			seen[id] = true
			terms = append(terms, id)
		}
	}
	bfs := rdf.NewBFSState(e.G)
	var all []Result
	for _, p := range e.G.Places() {
		dist := make(map[uint32]int)
		for _, t := range terms {
			dist[t] = -1
		}
		remaining := len(terms)
		bfs.Run(p, e.Dir, -1, func(v uint32, d int) bool {
			for _, t := range terms {
				if dist[t] == -1 && e.G.HasTerm(v, t) {
					dist[t] = d
					remaining--
				}
			}
			return remaining > 0
		})
		if remaining > 0 {
			continue
		}
		loose := 1.0
		for _, t := range terms {
			loose += float64(dist[t])
		}
		s := q.Loc.Dist(e.G.Loc(p))
		all = append(all, Result{Place: p, Looseness: loose, Dist: s, Score: e.Rank.Score(loose, s)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score < all[j].Score
		}
		return all[i].Place < all[j].Place
	})
	if len(all) > q.K {
		all = all[:q.K]
	}
	return all
}

func sameResults(t *testing.T, name string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d\ngot:  %+v\nwant: %+v", name, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i].Place != want[i].Place ||
			math.Abs(got[i].Looseness-want[i].Looseness) > 1e-9 ||
			math.Abs(got[i].Score-want[i].Score) > 1e-9 {
			t.Fatalf("%s: result %d = %+v, want %+v", name, i, got[i], want[i])
		}
	}
}

// All four algorithms must return the exact brute-force top-k on randomly
// generated datasets and workloads — for every α, both dataset shapes, and
// several k and |q.ψ| values.
func TestAlgorithmsMatchBruteForce(t *testing.T) {
	configs := []gen.Config{
		gen.DBpediaConfig(1500, 101),
		gen.YagoConfig(1500, 102),
	}
	for ci, cfg := range configs {
		g := gen.Generate(cfg)
		qg := gen.NewQueryGen(g, rdf.Outgoing, int64(200+ci))
		for _, alphaRadius := range []int{1, 3} {
			e := NewEngine(g, rdf.Outgoing)
			e.EnableReach()
			e.EnableAlpha(alphaRadius)
			rng := rand.New(rand.NewSource(int64(300 + ci)))
			for trial := 0; trial < 8; trial++ {
				m := 1 + rng.Intn(5)
				k := 1 + rng.Intn(8)
				loc, kws := qg.Original(m)
				q := Query{Loc: loc, Keywords: kws, K: k}
				want := bruteForce(e, q)
				for _, a := range allAlgos {
					got, _, err := a.run(e, q, Options{})
					if err != nil {
						t.Fatalf("%s: %v", a.name, err)
					}
					sameResults(t, a.name, got, want)
				}
			}
		}
	}
}

// Hard (SDLL/LDLL) queries stress the bounds differently; all algorithms
// must still agree with brute force.
func TestHardQueriesMatchBruteForce(t *testing.T) {
	g := gen.Generate(gen.DBpediaConfig(1200, 55))
	qg := gen.NewQueryGen(g, rdf.Outgoing, 77)
	e := NewEngine(g, rdf.Outgoing)
	e.EnableReach()
	e.EnableAlpha(3)
	for trial := 0; trial < 4; trial++ {
		for _, hard := range []func(int) (geo.Point, []string){qg.SDLL, qg.LDLL} {
			loc, kws := hard(3)
			q := Query{Loc: loc, Keywords: kws, K: 5}
			want := bruteForce(e, q)
			for _, a := range allAlgos {
				got, _, err := a.run(e, q, Options{})
				if err != nil {
					t.Fatalf("%s: %v", a.name, err)
				}
				sameResults(t, a.name, got, want)
			}
		}
	}
}

// The undirected traversal variant (the paper's future-work definition)
// must also be consistent across algorithms.
func TestUndirectedConsistency(t *testing.T) {
	g := gen.Generate(gen.YagoConfig(800, 31))
	qg := gen.NewQueryGen(g, rdf.Undirected, 41)
	e := NewEngine(g, rdf.Undirected)
	e.EnableReach()
	e.EnableAlpha(2)
	for trial := 0; trial < 5; trial++ {
		loc, kws := qg.Original(3)
		q := Query{Loc: loc, Keywords: kws, K: 4}
		want := bruteForce(e, q)
		for _, a := range allAlgos {
			got, _, err := a.run(e, q, Options{})
			if err != nil {
				t.Fatalf("%s: %v", a.name, err)
			}
			sameResults(t, a.name, got, want)
		}
	}
}

// Options.MaxDist must behave as a pure filter: the results equal the
// unrestricted brute-force top-k restricted to the radius — identically
// across all four algorithms.
func TestMaxDistConsistency(t *testing.T) {
	g := gen.Generate(gen.DBpediaConfig(1200, 701))
	qg := gen.NewQueryGen(g, rdf.Outgoing, 702)
	e := NewEngine(g, rdf.Outgoing)
	e.EnableReach()
	e.EnableAlpha(3)
	for trial := 0; trial < 6; trial++ {
		loc, kws := qg.Original(3)
		q := Query{Loc: loc, Keywords: kws, K: 5}
		radius := 5.0 + float64(trial)*5
		// Reference: brute force, filtered by radius, top-k.
		all := bruteForce(e, Query{Loc: loc, Keywords: kws, K: 1 << 20})
		var want []Result
		for _, r := range all {
			if r.Dist <= radius {
				want = append(want, r)
			}
		}
		if len(want) > q.K {
			want = want[:q.K]
		}
		for _, a := range allAlgos {
			got, _, err := a.run(e, q, Options{MaxDist: radius})
			if err != nil {
				t.Fatalf("%s: %v", a.name, err)
			}
			sameResults(t, a.name+"-maxdist", got, want)
		}
	}
}

// The grid spatial source must give BSP/SPP identical answers to the
// R-tree source (Section 7: evaluation is orthogonal to the spatial
// index).
func TestGridSourceMatchesRTree(t *testing.T) {
	g := gen.Generate(gen.YagoConfig(1000, 601))
	qg := gen.NewQueryGen(g, rdf.Outgoing, 602)
	e := NewEngine(g, rdf.Outgoing)
	e.EnableReach()
	e.EnableGrid(16)
	for trial := 0; trial < 6; trial++ {
		loc, kws := qg.Original(3)
		q := Query{Loc: loc, Keywords: kws, K: 5}
		for _, a := range []algo{{"BSP", (*Engine).BSP}, {"SPP", (*Engine).SPP}} {
			want, _, err := a.run(e, q, Options{})
			if err != nil {
				t.Fatal(err)
			}
			got, stats, err := a.run(e, q, Options{UseGrid: true})
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, a.name+"-grid", got, want)
			if stats.RTreeNodeAccesses == 0 && len(got) > 0 {
				t.Errorf("%s-grid: no cell accesses recorded", a.name)
			}
		}
	}
	// UseGrid without EnableGrid errors.
	bare := NewEngine(g, rdf.Outgoing)
	if _, _, err := bare.BSP(Query{Loc: geo.Point{}, Keywords: []string{"w1"}, K: 1}, Options{UseGrid: true}); err == nil {
		t.Error("UseGrid without grid should error")
	}
}

// Ablations must not change answers, only costs: disabling pruning rules
// leaves the result set identical.
func TestAblationsPreserveResults(t *testing.T) {
	g := gen.Generate(gen.DBpediaConfig(1000, 61))
	qg := gen.NewQueryGen(g, rdf.Outgoing, 71)
	e := NewEngine(g, rdf.Outgoing)
	e.EnableReach()
	e.EnableAlpha(3)
	for trial := 0; trial < 5; trial++ {
		loc, kws := qg.Original(4)
		q := Query{Loc: loc, Keywords: kws, K: 5}
		base, _, err := e.SPP(q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, opts := range []Options{{NoRule1: true}, {NoRule2: true}, {NoRule1: true, NoRule2: true}} {
			got, _, err := e.SPP(q, opts)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, "SPP-ablated", got, base)
			got, _, err = e.SP(q, opts)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, "SP-ablated", got, base)
		}
	}
}

// Pruning effectiveness, directionally: SP must do no more TQSP
// computations than SPP, which must do no more than BSP completes — on
// aggregate over a workload (the paper's Figures 3(b) and 4(b) shape).
func TestPruningReducesWork(t *testing.T) {
	g := gen.Generate(gen.DBpediaConfig(2500, 81))
	qg := gen.NewQueryGen(g, rdf.Outgoing, 91)
	e := NewEngine(g, rdf.Outgoing)
	e.EnableReach()
	e.EnableAlpha(3)
	var bspT, sppT, spT int64
	var bspN, spN int64
	for trial := 0; trial < 10; trial++ {
		loc, kws := qg.Original(5)
		q := Query{Loc: loc, Keywords: kws, K: 5}
		_, s1, err := e.BSP(q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		_, s2, err := e.SPP(q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		_, s3, err := e.SP(q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		bspT += s1.TQSPComputations
		sppT += s2.TQSPComputations
		spT += s3.TQSPComputations
		bspN += s1.RTreeNodeAccesses
		spN += s3.RTreeNodeAccesses
	}
	if sppT > bspT {
		t.Errorf("SPP TQSP computations (%d) exceed BSP's (%d)", sppT, bspT)
	}
	if spT > sppT {
		t.Errorf("SP TQSP computations (%d) exceed SPP's (%d)", spT, sppT)
	}
	if spN > bspN {
		t.Errorf("SP node accesses (%d) exceed BSP's (%d)", spN, bspN)
	}
}

// KeywordTopK (location-free keyword search) must equal a brute-force
// looseness ranking over all places.
func TestKeywordTopKMatchesBruteForce(t *testing.T) {
	g := gen.Generate(gen.YagoConfig(900, 401))
	qg := gen.NewQueryGen(g, rdf.Outgoing, 402)
	e := NewEngine(g, rdf.Outgoing)
	for trial := 0; trial < 6; trial++ {
		_, kws := qg.Original(3)
		k := 1 + trial
		got, _, err := e.KeywordTopK(kws, k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Brute force: looseness of every place, ranked ascending.
		saved := e.Rank
		e.Rank = looseOnlyRank{}
		want := bruteForce(e, Query{Keywords: kws, K: k})
		e.Rank = saved
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d vs %d results", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].Looseness != want[i].Looseness {
				t.Fatalf("trial %d result %d: L=%v want %v", trial, i, got[i].Looseness, want[i].Looseness)
			}
		}
	}
}

// looseOnlyRank scores by looseness alone, making bruteForce rank the way
// KeywordTopK does.
type looseOnlyRank struct{}

func (looseOnlyRank) Score(l, s float64) float64               { return l }
func (looseOnlyRank) MinScore(s float64) float64               { return 1 }
func (looseOnlyRank) LoosenessThreshold(th, s float64) float64 { return th }

// More than 64 distinct resolvable keywords must be rejected (coverage is
// tracked in a 64-bit mask).
func TestTooManyDistinctKeywords(t *testing.T) {
	b := rdf.NewBuilder()
	v := b.AddBareVertex("v")
	kws := make([]string, 70)
	for i := range kws {
		kws[i] = string(rune('a'+i%26)) + string(rune('a'+i/26))
		b.AddTermID(v, b.Vocab.ID(kws[i]))
	}
	b.SetLocation(v, geo.Point{})
	e := NewEngine(b.Build(), rdf.Outgoing)
	if _, _, err := e.BSP(Query{Keywords: kws, K: 1}, Options{}); err == nil {
		t.Fatal("expected error for >64 keywords")
	}
	// 64 exactly is fine.
	if _, _, err := e.BSP(Query{Keywords: kws[:64], K: 1}, Options{}); err != nil {
		t.Fatalf("64 keywords should work: %v", err)
	}
}

// Deadlines must be honoured by every algorithm without corrupting state.
func TestDeadlineAllAlgorithms(t *testing.T) {
	g := gen.Generate(gen.YagoConfig(2000, 801))
	qg := gen.NewQueryGen(g, rdf.Outgoing, 802)
	e := NewEngine(g, rdf.Outgoing)
	e.EnableReach()
	e.EnableAlpha(3)
	loc, kws := qg.Original(5)
	q := Query{Loc: loc, Keywords: kws, K: 10}
	for _, a := range allAlgos {
		_, stats, err := a.run(e, q, Options{Deadline: 1}) // 1ns
		if err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		if !stats.TimedOut {
			t.Errorf("%s: expected timeout flag", a.name)
		}
		// The engine stays usable afterwards.
		res, _, err := a.run(e, q, Options{})
		if err != nil || len(res) == 0 {
			t.Errorf("%s after timeout: %v results, err %v", a.name, len(res), err)
		}
	}
}

// Stats sanity: counters populated, times non-negative.
func TestStatsPopulated(t *testing.T) {
	g := gen.Generate(gen.YagoConfig(1000, 21))
	qg := gen.NewQueryGen(g, rdf.Outgoing, 22)
	e := NewEngine(g, rdf.Outgoing)
	e.EnableReach()
	e.EnableAlpha(3)
	loc, kws := qg.Original(3)
	q := Query{Loc: loc, Keywords: kws, K: 3}
	_, stats, err := e.SPP(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReachQueries == 0 {
		t.Error("SPP should issue reachability queries")
	}
	if stats.SemanticTime < 0 || stats.OtherTime < 0 {
		t.Error("negative timings")
	}
	if stats.TotalTime() != stats.SemanticTime+stats.OtherTime {
		t.Error("TotalTime mismatch")
	}
	var agg Stats
	agg.Add(stats)
	agg.Add(stats)
	if agg.ReachQueries != 2*stats.ReachQueries {
		t.Error("Stats.Add broken")
	}
}

func TestTopKHelper(t *testing.T) {
	tk := newTopK(2)
	if !math.IsInf(tk.theta(), 1) {
		t.Error("theta should start at +Inf")
	}
	tk.add(Result{Place: 1, Score: 5})
	if !math.IsInf(tk.theta(), 1) {
		t.Error("theta stays +Inf below k results")
	}
	tk.add(Result{Place: 2, Score: 3})
	if tk.theta() != 5 {
		t.Errorf("theta = %v, want 5", tk.theta())
	}
	tk.add(Result{Place: 3, Score: 4})
	if tk.theta() != 4 {
		t.Errorf("theta = %v, want 4 after eviction", tk.theta())
	}
	out := tk.sorted()
	if len(out) != 2 || out[0].Place != 2 || out[1].Place != 3 {
		t.Errorf("sorted = %+v", out)
	}
}

func TestRankingFunctions(t *testing.T) {
	p := ProductRanking{}
	if p.Score(4, 1.5) != 6 || p.MinScore(2) != 2 {
		t.Error("product ranking wrong")
	}
	if p.LoosenessThreshold(6, 2) != 3 {
		t.Error("product threshold wrong")
	}
	if !math.IsInf(p.LoosenessThreshold(6, 0), 1) {
		t.Error("zero-distance threshold must be +Inf")
	}
	w := WeightedSumRanking{Beta: 0.25}
	if w.Score(4, 8) != 0.25*4+0.75*8 {
		t.Error("weighted score wrong")
	}
	if got := w.LoosenessThreshold(w.Score(4, 8), 8); math.Abs(got-4) > 1e-12 {
		t.Errorf("weighted threshold = %v, want 4", got)
	}
	if w.MinScore(8) != 0.25+6 {
		t.Error("weighted MinScore wrong")
	}
	z := WeightedSumRanking{Beta: 0}
	if !math.IsInf(z.LoosenessThreshold(1, 1), 1) {
		t.Error("beta=0 threshold must be +Inf")
	}
}
