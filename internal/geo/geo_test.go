package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	tests := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-2, 0}, Point{2, 0}, 4},
		{Point{43.51, 4.75}, Point{43.71, 4.66}, math.Sqrt(0.2*0.2 + 0.09*0.09)},
	}
	for _, tt := range tests {
		if got := tt.p.Dist(tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Dist(%v,%v) = %v, want %v", tt.p, tt.q, got, tt.want)
		}
		if got := tt.p.DistSq(tt.q); math.Abs(got-tt.want*tt.want) > 1e-9 {
			t.Errorf("DistSq(%v,%v) = %v, want %v", tt.p, tt.q, got, tt.want*tt.want)
		}
	}
}

func TestDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Point{ax, ay}, Point{bx, by}
		return a.Dist(b) == b.Dist(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEmptyRect(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Fatal("EmptyRect should be empty")
	}
	if e.Area() != 0 {
		t.Errorf("empty rect area = %v, want 0", e.Area())
	}
	r := Rect{0, 0, 2, 3}
	if got := e.Union(r); got != r {
		t.Errorf("EmptyRect.Union(%v) = %v, want identity", r, got)
	}
	if got := r.Union(e); got != r {
		t.Errorf("r.Union(empty) = %v, want identity", got)
	}
}

func TestRectUnionContains(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	b := Rect{2, 2, 3, 3}
	u := a.Union(b)
	if !u.ContainsRect(a) || !u.ContainsRect(b) {
		t.Errorf("union %v must contain both operands", u)
	}
	if u != (Rect{0, 0, 3, 3}) {
		t.Errorf("union = %v, want [0,3]x[0,3]", u)
	}
}

func TestRectArea(t *testing.T) {
	r := Rect{1, 2, 4, 6}
	if got := r.Area(); got != 12 {
		t.Errorf("Area = %v, want 12", got)
	}
	if got := r.Margin(); got != 7 {
		t.Errorf("Margin = %v, want 7", got)
	}
}

func TestEnlargement(t *testing.T) {
	r := Rect{0, 0, 2, 2}
	s := Rect{1, 1, 3, 3}
	// union is [0,3]x[0,3] area 9, r area 4 -> enlargement 5
	if got := r.Enlargement(s); got != 5 {
		t.Errorf("Enlargement = %v, want 5", got)
	}
	if got := r.Enlargement(Rect{0.5, 0.5, 1, 1}); got != 0 {
		t.Errorf("Enlargement of contained rect = %v, want 0", got)
	}
}

func TestContainsPoint(t *testing.T) {
	r := Rect{0, 0, 2, 2}
	for _, p := range []Point{{0, 0}, {2, 2}, {1, 1}, {0, 2}} {
		if !r.ContainsPoint(p) {
			t.Errorf("%v should contain %v", r, p)
		}
	}
	for _, p := range []Point{{-0.1, 0}, {2.1, 1}, {1, 3}} {
		if r.ContainsPoint(p) {
			t.Errorf("%v should not contain %v", r, p)
		}
	}
}

func TestIntersects(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	cases := []struct {
		b    Rect
		want bool
	}{
		{Rect{1, 1, 3, 3}, true},
		{Rect{2, 2, 3, 3}, true}, // touching corner counts
		{Rect{3, 3, 4, 4}, false},
		{Rect{0.5, 0.5, 1.5, 1.5}, true}, // contained
		{Rect{-1, 0, -0.5, 2}, false},
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("Intersects(%v,%v) = %v, want %v", a, c.b, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("Intersects not symmetric for %v,%v", a, c.b)
		}
	}
	if a.Intersects(EmptyRect()) || EmptyRect().Intersects(a) {
		t.Error("empty rect must not intersect anything")
	}
}

func TestMinDist(t *testing.T) {
	r := Rect{0, 0, 2, 2}
	tests := []struct {
		p    Point
		want float64
	}{
		{Point{1, 1}, 0},   // inside
		{Point{2, 2}, 0},   // on boundary
		{Point{3, 1}, 1},   // right of
		{Point{1, -2}, 2},  // below
		{Point{5, 6}, 5},   // corner (3,4) away
		{Point{-3, -4}, 5}, // opposite corner
	}
	for _, tt := range tests {
		if got := r.MinDist(tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("MinDist(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

// MinDist must lower-bound the distance from the query point to every point
// contained in the rectangle.
func TestMinDistLowerBound(t *testing.T) {
	f := func(qx, qy, ax, ay, bx, by float64) bool {
		r := RectFromPoint(Point{ax, ay}).ExpandPoint(Point{bx, by})
		q := Point{qx, qy}
		// Sample the corners and center; all must be >= MinDist.
		md := r.MinDist(q)
		samples := []Point{
			{r.MinX, r.MinY}, {r.MinX, r.MaxY}, {r.MaxX, r.MinY}, {r.MaxX, r.MaxY}, r.Center(),
		}
		for _, s := range samples {
			if q.Dist(s) < md-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestUnionCommutativeAssociativeProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a := RectFromPoint(Point{ax, ay})
		b := RectFromPoint(Point{bx, by})
		c := RectFromPoint(Point{cx, cy})
		if a.Union(b) != b.Union(a) {
			return false
		}
		return a.Union(b).Union(c) == a.Union(b.Union(c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestContainsRect(t *testing.T) {
	outer := Rect{0, 0, 10, 10}
	cases := []struct {
		inner Rect
		want  bool
	}{
		{Rect{1, 1, 9, 9}, true},
		{Rect{0, 0, 10, 10}, true}, // itself
		{Rect{-1, 1, 9, 9}, false}, // sticks out left
		{Rect{1, 1, 9, 11}, false}, // sticks out top
		{EmptyRect(), true},        // empty is contained everywhere
	}
	for _, c := range cases {
		if got := outer.ContainsRect(c.inner); got != c.want {
			t.Errorf("ContainsRect(%v) = %v, want %v", c.inner, got, c.want)
		}
	}
	if EmptyRect().ContainsRect(outer) {
		t.Error("empty rect contains nothing non-empty")
	}
}

func TestExpandPoint(t *testing.T) {
	r := EmptyRect().ExpandPoint(Point{1, 2}).ExpandPoint(Point{-1, 5})
	if r != (Rect{-1, 2, 1, 5}) {
		t.Errorf("ExpandPoint chain = %v", r)
	}
}

func TestRectFromPoint(t *testing.T) {
	p := Point{1.5, -2}
	r := RectFromPoint(p)
	if r.IsEmpty() || !r.ContainsPoint(p) || r.Area() != 0 {
		t.Errorf("RectFromPoint(%v) = %v", p, r)
	}
	if r.Center() != p {
		t.Errorf("Center = %v, want %v", r.Center(), p)
	}
}
