// Package geo provides the planar geometry primitives used by the spatial
// index and the kSP ranking function: points, axis-aligned rectangles, and
// Euclidean distance computations.
//
// The paper measures spatial distance S(q, p) as the Euclidean distance
// between coordinate pairs (Section 2), so no geodesic math is needed.
package geo

import (
	"fmt"
	"math"
)

// Point is a location in the plane. For geographic data X is longitude-like
// and Y is latitude-like, but the package is agnostic.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// DistSq returns the squared Euclidean distance between p and q. It is
// cheaper than Dist and sufficient for comparisons.
func (p Point) DistSq(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%g, %g)", p.X, p.Y)
}

// Rect is an axis-aligned rectangle (minimum bounding rectangle). A Rect is
// valid when MinX <= MaxX and MinY <= MaxY. The zero Rect is not valid;
// build one with RectFromPoint or EmptyRect and Expand.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// EmptyRect returns the identity element for Union: a rectangle that
// contains nothing and unions with any rectangle to yield that rectangle.
func EmptyRect() Rect {
	return Rect{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// RectFromPoint returns the degenerate rectangle covering exactly p.
func RectFromPoint(p Point) Rect {
	return Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
}

// IsEmpty reports whether r contains no points.
func (r Rect) IsEmpty() bool {
	return r.MinX > r.MaxX || r.MinY > r.MaxY
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		MinX: math.Min(r.MinX, s.MinX),
		MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX),
		MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// ExpandPoint returns the smallest rectangle containing r and p.
func (r Rect) ExpandPoint(p Point) Rect {
	return r.Union(RectFromPoint(p))
}

// Area returns the area of r; degenerate rectangles have zero area.
func (r Rect) Area() float64 {
	if r.IsEmpty() {
		return 0
	}
	return (r.MaxX - r.MinX) * (r.MaxY - r.MinY)
}

// Margin returns half the perimeter of r.
func (r Rect) Margin() float64 {
	if r.IsEmpty() {
		return 0
	}
	return (r.MaxX - r.MinX) + (r.MaxY - r.MinY)
}

// Enlargement returns the area increase needed for r to contain s.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// ContainsPoint reports whether p lies inside or on the boundary of r.
func (r Rect) ContainsPoint(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsRect reports whether s lies entirely within r.
func (r Rect) ContainsRect(s Rect) bool {
	if s.IsEmpty() {
		return true
	}
	return s.MinX >= r.MinX && s.MaxX <= r.MaxX && s.MinY >= r.MinY && s.MaxY <= r.MaxY
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX && r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2}
}

// MinDist returns the minimum Euclidean distance from p to any point of r
// (zero if p is inside r). This is the classic MINDIST lower bound used by
// best-first nearest-neighbour search on R-trees.
func (r Rect) MinDist(p Point) float64 {
	return math.Sqrt(r.MinDistSq(p))
}

// MinDistSq returns the squared MinDist; cheaper, order-preserving.
func (r Rect) MinDistSq(p Point) float64 {
	var dx, dy float64
	switch {
	case p.X < r.MinX:
		dx = r.MinX - p.X
	case p.X > r.MaxX:
		dx = p.X - r.MaxX
	}
	switch {
	case p.Y < r.MinY:
		dy = r.MinY - p.Y
	case p.Y > r.MaxY:
		dy = p.Y - r.MaxY
	}
	return dx*dx + dy*dy
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g]x[%g,%g]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}
