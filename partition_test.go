package ksp_test

import (
	"fmt"
	"testing"

	"ksp"
)

func lineDataset(t *testing.T, places int) *ksp.Dataset {
	t.Helper()
	b := ksp.NewBuilder()
	for i := 0; i < places; i++ {
		name := fmt.Sprintf("p%d", i)
		b.AddPlace(name, ksp.Point{X: float64(i), Y: 0})
		b.AddLabel(name, "d", "coffee")
	}
	ds, err := b.Build(ksp.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// PartitionSpatial covers every place exactly once, with tile MBRs
// inside the parent MBR; empty trailing tiles report no bounds.
func TestPartitionSpatial(t *testing.T) {
	ds := lineDataset(t, 5)
	parent, ok := ds.Bounds()
	if !ok {
		t.Fatal("parent dataset has no bounds")
	}

	if _, err := ds.PartitionSpatial(0); err == nil {
		t.Fatal("n=0 accepted")
	}
	one, err := ds.PartitionSpatial(1)
	if err != nil || len(one) != 1 || one[0] != ds {
		t.Fatalf("n=1 must return the receiver: %v, %v", one, err)
	}

	for _, n := range []int{2, 3, 5, 9} {
		tiles, err := ds.PartitionSpatial(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		total := 0
		for i, tile := range tiles {
			got := tile.SpatialPlaces()
			total += got
			r, ok := tile.Bounds()
			if got == 0 {
				if ok {
					t.Errorf("n=%d tile %d: empty tile reports bounds %+v", n, i, r)
				}
				continue
			}
			if !ok {
				t.Errorf("n=%d tile %d: %d places but no bounds", n, i, got)
				continue
			}
			if r.MinX < parent.MinX || r.MaxX > parent.MaxX || r.MinY < parent.MinY || r.MaxY > parent.MaxY {
				t.Errorf("n=%d tile %d: MBR %+v escapes parent %+v", n, i, r, parent)
			}
		}
		if total != ds.Stats().Places {
			t.Errorf("n=%d: tiles hold %d places, want %d", n, total, ds.Stats().Places)
		}
	}
}

// Each tile answers queries over its own places only: the union of
// single-tile answers is the full answer, with no place duplicated
// across tiles.
func TestPartitionDisjointAnswers(t *testing.T) {
	ds := lineDataset(t, 6)
	tiles, err := ds.PartitionSpatial(3)
	if err != nil {
		t.Fatal(err)
	}
	q := ksp.Query{Loc: ksp.Point{}, Keywords: []string{"coffee"}, K: 6}
	seen := map[string]int{}
	for ti, tile := range tiles {
		res, _, err := tile.SearchWith(ksp.AlgoSP, q, ksp.Options{})
		if err != nil {
			t.Fatalf("tile %d: %v", ti, err)
		}
		for _, r := range res {
			seen[tile.URI(r.Place)]++
		}
	}
	if len(seen) != 6 {
		t.Fatalf("union of tile answers covers %d places, want 6: %v", len(seen), seen)
	}
	for uri, n := range seen {
		if n != 1 {
			t.Errorf("place %s answered by %d tiles", uri, n)
		}
	}
}
