// Hospitals: the introduction's motivating application — "patients who
// want to find nearby hospitals which offer treatment for specific
// conditions".
//
// A small health-care knowledge graph links hospitals to departments,
// treatments and certifications. Patients at different locations search
// by condition keywords; the kSP engine ranks hospitals by the combination
// of proximity and how directly their semantic neighbourhood covers the
// condition.
//
// Run with: go run ./examples/hospitals
package main

import (
	"fmt"
	"log"

	"ksp"
)

type hospital struct {
	name  string
	loc   ksp.Point
	depts map[string]string // department -> services text
}

func main() {
	hospitals := []hospital{
		{"St_Mary_General", ksp.Point{X: 0.5, Y: 0.8}, map[string]string{
			"Cardiology_Dept": "cardiology heart surgery pacemaker arrhythmia",
			"Emergency_Room":  "emergency trauma acute care",
			"Maternity_Ward":  "maternity obstetrics birth neonatal",
		}},
		{"Riverside_Clinic", ksp.Point{X: 2.1, Y: 1.2}, map[string]string{
			"Dermatology_Unit": "dermatology skin eczema psoriasis",
			"Cardiology_Dept":  "cardiology heart echocardiogram",
		}},
		{"Hilltop_Medical_Center", ksp.Point{X: 4.0, Y: 3.5}, map[string]string{
			"Oncology_Center": "oncology cancer chemotherapy radiation",
			"Cardiology_Dept": "cardiology heart transplant surgery",
			"Emergency_Room":  "emergency trauma helicopter",
		}},
		{"Lakeside_Hospital", ksp.Point{X: 1.0, Y: 3.0}, map[string]string{
			"Orthopedics_Dept": "orthopedics bone fracture joint replacement",
			"Physio_Unit":      "physiotherapy rehabilitation recovery",
		}},
		{"Downtown_Urgent_Care", ksp.Point{X: 0.2, Y: 0.2}, map[string]string{
			"Walkin_Clinic": "walkin urgent minor injury vaccination",
		}},
	}

	b := ksp.NewBuilder()
	for _, h := range hospitals {
		b.AddPlace(h.name, h.loc)
		b.AddLabel(h.name, "type", "hospital medical")
		for dept, services := range h.depts {
			node := h.name + "/" + dept
			b.AddFact(h.name, "hasDepartment", node)
			b.AddLabel(node, "offers", services)
		}
	}
	// Certifications hang one hop deeper: they matter, but less than a
	// department that directly treats the condition — exactly the
	// looseness semantics of the paper.
	b.AddFact("St_Mary_General/Cardiology_Dept", "certifiedBy", "National_Heart_Board")
	b.AddLabel("National_Heart_Board", "grants", "certified excellence cardiac")
	b.AddFact("Hilltop_Medical_Center/Oncology_Center", "certifiedBy", "Cancer_Care_Alliance")
	b.AddLabel("Cancer_Care_Alliance", "grants", "certified excellence oncology")

	ds, err := b.Build(ksp.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	patients := []struct {
		where    string
		loc      ksp.Point
		symptoms []string
	}{
		{"downtown", ksp.Point{X: 0.3, Y: 0.3}, []string{"heart", "surgery"}},
		{"downtown", ksp.Point{X: 0.3, Y: 0.3}, []string{"cancer", "chemotherapy"}},
		{"the lake", ksp.Point{X: 1.2, Y: 2.8}, []string{"fracture", "rehabilitation"}},
		{"the hills", ksp.Point{X: 3.8, Y: 3.2}, []string{"emergency", "cardiology", "certified"}},
	}
	for _, p := range patients {
		fmt.Printf("patient near %s searching %v:\n", p.where, p.symptoms)
		res, err := ds.Search(ksp.Query{Loc: p.loc, Keywords: p.symptoms, K: 2})
		if err != nil {
			log.Fatal(err)
		}
		if len(res) == 0 {
			fmt.Println("  no hospital covers those needs")
			continue
		}
		for i, r := range res {
			fmt.Printf("  %d. %-24s score %.3f (distance %.2f, looseness %.0f)\n",
				i+1, ds.URI(r.Place), r.Score, r.Dist, r.Looseness)
		}
	}
}
