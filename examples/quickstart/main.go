// Quickstart: the running example of the paper (Figure 1) end to end.
//
// It builds the small DBpedia excerpt around Montmajour Abbey and the
// Roman Catholic Diocese of Fréjus-Toulon, then runs the 2SP query of
// Examples 2 and 5 from two locations, printing the retrieved semantic
// places and their trees.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"ksp"
)

func main() {
	b := ksp.NewBuilder()

	// Place p1: Montmajour Abbey (43.71, 4.66).
	b.AddPlace("Montmajour_Abbey", ksp.Point{X: 43.71, Y: 4.66})
	b.AddFact("Montmajour_Abbey", "subject", "Category:Romanesque_architecture")
	b.AddFact("Montmajour_Abbey", "dedication", "Saint_Peter")
	b.AddFact("Montmajour_Abbey", "diocese", "Ancient_Diocese_of_Arles")
	b.AddFact("Ancient_Diocese_of_Arles", "subject", "Category:Architectural_history")
	b.AddFact("Saint_Peter", "birthPlace", "Roman_Empire")
	b.AddLabel("Saint_Peter", "description", "catholic roman saint")
	b.AddLabel("Roman_Empire", "description", "ancient roman empire")

	// Place p2: Roman Catholic Diocese of Fréjus-Toulon (43.13, 5.97).
	b.AddPlace("Roman_Catholic_Diocese_of_Fréjus-Toulon", ksp.Point{X: 43.13, Y: 5.97})
	b.AddFact("Roman_Catholic_Diocese_of_Fréjus-Toulon", "patron", "Mary_Magdalene")
	b.AddFact("Roman_Catholic_Diocese_of_Fréjus-Toulon", "denomination", "Catholic_Church")
	b.AddFact("Mary_Magdalene", "deathPlace", "Anatolia")
	b.AddLabel("Catholic_Church", "description", "catholic church history")
	b.AddLabel("Anatolia", "description", "ancient anatolia history")

	ds, err := b.Build(ksp.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	st := ds.Stats()
	fmt.Printf("dataset: %d vertices, %d edges, %d places\n\n", st.Vertices, st.Edges, st.Places)

	keywords := []string{"ancient", "roman", "catholic", "history"}
	for _, q := range []struct {
		name string
		loc  ksp.Point
	}{
		{"q1 (near the abbey)", ksp.Point{X: 43.51, Y: 4.75}},
		{"q2 (near the diocese)", ksp.Point{X: 43.17, Y: 5.90}},
	} {
		fmt.Printf("kSP query at %s for %v:\n", q.name, keywords)
		res, _, err := ds.SearchWith(ksp.AlgoSP, ksp.Query{Loc: q.loc, Keywords: keywords, K: 2},
			ksp.Options{CollectTrees: true})
		if err != nil {
			log.Fatal(err)
		}
		for i, r := range res {
			fmt.Printf("  %d. %s  (score %.2f = looseness %.0f × distance %.2f)\n",
				i+1, ds.URI(r.Place), r.Score, r.Looseness, r.Dist)
			for _, n := range r.Tree.Nodes {
				mark := ""
				if len(n.Matched) > 0 {
					mark = "  ← keyword match"
				}
				fmt.Printf("     %s%s%s\n", strings.Repeat("· ", n.Depth), ds.URI(n.V), mark)
			}
		}
		fmt.Println()
	}
}
