// Service: the full production loop — build a dataset, persist it as a
// snapshot, restore it (skipping the expensive α-index construction), and
// serve kSP queries over HTTP, then query the running service.
//
// Run with: go run ./examples/service
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"ksp"
	"ksp/internal/server"
)

func main() {
	dir, err := os.MkdirTemp("", "ksp-service")
	if err != nil {
		log.Fatal(err)
	}
	//ksplint:ignore droppederr -- best-effort temp-dir cleanup on exit
	defer os.RemoveAll(dir)

	// 1. Build a small city dataset and snapshot it.
	b := ksp.NewBuilder()
	add := func(name string, x, y float64, text string) {
		b.AddPlace(name, ksp.Point{X: x, Y: y})
		b.AddLabel(name, "description", text)
	}
	add("Museum_Quarter", 1, 1, "museum art modern sculpture")
	add("Old_Market", 2, 1.5, "market food spices antiques")
	add("River_Walk", 0.5, 2, "river park walk sunset")
	add("Guild_Hall", 1.8, 0.7, "guild hall medieval history")
	b.AddFact("Museum_Quarter", "hosts", "Sculpture_Biennale")
	b.AddLabel("Sculpture_Biennale", "about", "sculpture exhibition international")

	built, err := b.Build(ksp.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	snap := filepath.Join(dir, "city.snap")
	if err := built.Save(snap); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot written: %s\n", snap)

	// 2. Restore — in a real deployment this is the service's cold start.
	start := time.Now()
	ds, err := ksp.LoadSnapshot(snap, ksp.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored %d places in %v\n\n", ds.Stats().Places, time.Since(start).Round(time.Microsecond))

	// 3. Serve. (httptest keeps the example self-contained; cmd/kspserver
	// is the standalone equivalent.)
	srv := httptest.NewServer(server.New(ds))
	defer srv.Close()

	// 4. Query the running service like any HTTP client would.
	for _, q := range []string{
		"/search?x=1&y=1.2&kw=art,sculpture&k=2",
		"/search?x=2&y=1&kw=history&k=1",
		"/describe?uri=Old_Market",
	} {
		resp, err := http.Get(srv.URL + q)
		if err != nil {
			log.Fatal(err)
		}
		var body json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			log.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			log.Fatal(err)
		}
		pretty, err := json.MarshalIndent(body, "  ", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("GET %s\n  %s\n\n", q, pretty)
	}
}
