// Tourism: the scenario of Example 2 — a tourist doing field research
// moves through a region and re-issues the same keyword query from each
// stop; the top places change with the location.
//
// The dataset is a miniature Provence knowledge graph loaded from inline
// N-Triples (the same format the DBpedia/YAGO dumps use), demonstrating
// the ksp.Open loader, WKT geometry literals and re-querying.
//
// Run with: go run ./examples/tourism
package main

import (
	"fmt"
	"log"
	"strings"

	"ksp"
)

const provenceNT = `
# Roman monuments around Arles and Nîmes.
<ex:Arles_Amphitheatre> <geo:hasGeometry> "POINT(43.677 4.631)"^^<http://www.opengis.net/ont/geosparql#wktLiteral> .
<ex:Arles_Amphitheatre> <ex:description> "roman amphitheatre arena gladiator" .
<ex:Arles_Amphitheatre> <ex:era> <ex:Roman_Gaul> .
<ex:Maison_Carree> <geo:hasGeometry> "POINT(43.838 4.356)"^^<http://www.opengis.net/ont/geosparql#wktLiteral> .
<ex:Maison_Carree> <ex:description> "roman temple facade" .
<ex:Maison_Carree> <ex:era> <ex:Roman_Gaul> .
<ex:Pont_du_Gard> <geo:hasGeometry> "POINT(43.947 4.535)"^^<http://www.opengis.net/ont/geosparql#wktLiteral> .
<ex:Pont_du_Gard> <ex:description> "roman aqueduct bridge unesco" .
<ex:Pont_du_Gard> <ex:era> <ex:Roman_Gaul> .
<ex:Roman_Gaul> <ex:description> "ancient roman province gaul" .

# Medieval religious sites.
<ex:Montmajour_Abbey> <geo:hasGeometry> "POINT(43.706 4.664)"^^<http://www.opengis.net/ont/geosparql#wktLiteral> .
<ex:Montmajour_Abbey> <ex:description> "abbey romanesque benedictine" .
<ex:Montmajour_Abbey> <ex:dedication> <ex:Saint_Peter> .
<ex:Saint_Peter> <ex:description> "saint catholic apostle" .
<ex:Avignon_Palace> <geo:hasGeometry> "POINT(43.951 4.808)"^^<http://www.opengis.net/ont/geosparql#wktLiteral> .
<ex:Avignon_Palace> <ex:description> "palace popes gothic catholic" .
<ex:Avignon_Palace> <ex:history> <ex:Papal_Schism> .
<ex:Papal_Schism> <ex:description> "medieval history papacy schism" .

# Natural and artistic sites.
<ex:Calanques> <geo:hasGeometry> "POINT(43.210 5.450)"^^<http://www.opengis.net/ont/geosparql#wktLiteral> .
<ex:Calanques> <ex:description> "limestone cliffs hiking mediterranean" .
<ex:Van_Gogh_Route> <geo:hasGeometry> "POINT(43.676 4.628)"^^<http://www.opengis.net/ont/geosparql#wktLiteral> .
<ex:Van_Gogh_Route> <ex:description> "painting art van gogh starry" .
<ex:Van_Gogh_Route> <ex:about> <ex:Vincent_van_Gogh> .
<ex:Vincent_van_Gogh> <ex:description> "painter impressionism history art" .
`

func main() {
	ds, err := ksp.Open(strings.NewReader(provenceNT), ksp.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	st := ds.Stats()
	fmt.Printf("Provence graph: %d vertices, %d edges, %d places\n\n", st.Vertices, st.Edges, st.Places)

	itinerary := []struct {
		stop string
		loc  ksp.Point
	}{
		{"Arles old town", ksp.Point{X: 43.676, Y: 4.630}},
		{"Avignon station", ksp.Point{X: 43.942, Y: 4.806}},
		{"Marseille harbour", ksp.Point{X: 43.295, Y: 5.375}},
	}
	research := [][]string{
		{"roman", "ancient"},
		{"catholic", "history"},
		{"art", "history"},
	}

	for _, stop := range itinerary {
		fmt.Printf("— at %s (%.3f, %.3f)\n", stop.stop, stop.loc.X, stop.loc.Y)
		for _, kws := range research {
			res, err := ds.Search(ksp.Query{Loc: stop.loc, Keywords: kws, K: 1})
			if err != nil {
				log.Fatal(err)
			}
			if len(res) == 0 {
				fmt.Printf("   %-22v -> nothing relevant\n", kws)
				continue
			}
			r := res[0]
			fmt.Printf("   %-22v -> %-22s (%.2f away, looseness %.0f)\n",
				kws, strings.TrimPrefix(ds.URI(r.Place), "ex:"), r.Dist, r.Looseness)
		}
		fmt.Println()
	}
}
