// Comparison: the four evaluation algorithms (BSP, SPP, SP, TA) on a
// randomly generated city graph, with their cost statistics side by side —
// a miniature of the paper's Figure 3 run through the public API.
//
// All four must return identical answers; they differ only in how much
// work the pruning saves.
//
// Run with: go run ./examples/comparison
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"ksp"
)

func main() {
	ds := buildCity(4000, 5)

	q := ksp.Query{
		Loc:      ksp.Point{X: 50, Y: 50},
		Keywords: []string{"museum", "garden", "market"},
		K:        5,
	}
	fmt.Printf("query %v at (%.0f, %.0f), k=%d\n\n", q.Keywords, q.Loc.X, q.Loc.Y, q.K)
	fmt.Printf("%-5s %10s %8s %8s %10s %12s\n", "algo", "time", "TQSPs", "nodes", "reach qs", "top-1 score")
	for _, algo := range []ksp.Algorithm{ksp.AlgoBSP, ksp.AlgoSPP, ksp.AlgoSP, ksp.AlgoTA} {
		res, st, err := ds.SearchWith(algo, q, ksp.Options{})
		if err != nil {
			log.Fatal(err)
		}
		top := "-"
		if len(res) > 0 {
			top = fmt.Sprintf("%.4f", res[0].Score)
		}
		fmt.Printf("%-5s %10s %8d %8d %10d %12s\n",
			algo, st.TotalTime().Round(time.Microsecond), st.TQSPComputations,
			st.RTreeNodeAccesses, st.ReachQueries, top)
	}
}

// buildCity synthesizes a random city knowledge graph through the public
// Builder: venues (places) connected to amenity entities with descriptive
// labels.
func buildCity(venues int, degree int) *ksp.Dataset {
	rng := rand.New(rand.NewSource(7))
	amenities := []string{
		"museum modern art", "garden botanical park", "market farmers food",
		"theatre opera stage", "library books archive", "stadium sports arena",
		"cafe coffee pastry", "gallery sculpture exhibition", "pool swimming",
		"church historic spire",
	}
	b := ksp.NewBuilder()
	// Amenity hub entities shared by many venues.
	for i, a := range amenities {
		hub := fmt.Sprintf("hub_%d", i)
		b.AddLabel(hub, "description", a)
	}
	for v := 0; v < venues; v++ {
		name := fmt.Sprintf("venue_%d", v)
		b.AddPlace(name, ksp.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100})
		b.AddLabel(name, "type", "venue")
		for d := 0; d < 1+rng.Intn(degree); d++ {
			b.AddFact(name, "offers", fmt.Sprintf("hub_%d", rng.Intn(len(amenities))))
		}
	}
	ds, err := b.Build(ksp.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	return ds
}
