// Package ksp implements top-k relevant semantic place retrieval on
// spatial RDF data, after Shi, Wu and Mamoulis, SIGMOD 2016.
//
// A kSP query takes a location, a set of keywords and a count k, and
// returns the k places (spatial entities of the RDF graph) whose semantic
// neighbourhoods cover the keywords most tightly while lying close to the
// query location. No SPARQL and no schema knowledge is required.
//
// Typical use:
//
//	ds, err := ksp.OpenFile("data.nt", ksp.DefaultConfig())
//	...
//	results, err := ds.Search(ksp.Query{
//		Loc:      ksp.Point{X: 43.51, Y: 4.75},
//		Keywords: []string{"ancient", "roman", "catholic", "history"},
//		K:        5,
//	})
//
// Search runs the paper's fastest algorithm (SP) when the α-radius index
// is built; SearchWith exposes all four evaluation strategies (BSP, SPP,
// SP, TA) together with their cost statistics for benchmarking.
package ksp

import (
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"

	"ksp/internal/core"
	"ksp/internal/geo"
	"ksp/internal/invindex"
	"ksp/internal/nt"
	"ksp/internal/obs"
	"ksp/internal/rdf"
	"ksp/internal/store"
	"ksp/internal/text"
)

// Point is a planar location (X/Y or lon/lat — the library is agnostic,
// distances are Euclidean).
type Point = geo.Point

// Query is a kSP query: a location, keywords, and the number of places.
type Query = core.Query

// Result is one retrieved semantic place.
type Result = core.Result

// Tree is a materialized tightest qualified semantic place (TQSP).
type Tree = core.Tree

// TreeNode is one vertex of a Tree.
type TreeNode = core.TreeNode

// Stats carries the per-query cost counters of the underlying algorithm.
type Stats = core.Stats

// Options tunes one query execution (deadline, tree materialization,
// parallelism, cancellation).
type Options = core.Options

// CacheStats summarizes the cross-query looseness cache.
type CacheStats = core.CacheStats

// WindowStats carries the windowed candidate scheduler's lifetime
// totals. See Dataset.WindowStats.
type WindowStats = core.WindowStats

// SchedStats summarizes the parallel pipeline's work-stealing scheduler
// over the dataset's lifetime (Dataset.SchedStats).
type SchedStats = core.SchedStats

// Registry is a metrics registry: engines and servers record into it,
// and it renders in Prometheus text exposition format (WriteText) or as
// JSON-friendly samples (Snapshot). See Dataset.EnableMetrics.
type Registry = obs.Registry

// MetricPoint is one metric sample from Registry.Snapshot.
type MetricPoint = obs.MetricPoint

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// Trace records the timed span tree of one query. Create one with
// NewTrace, pass it via Options.Trace, and render it with its JSON
// method after the query returns. A nil Trace disables tracing at zero
// cost.
type Trace = obs.Trace

// SpanJSON is the rendered form of a Trace.
type SpanJSON = obs.SpanJSON

// NewTrace starts a query trace whose root span has the given name.
func NewTrace(name string) *Trace { return obs.NewTrace(name) }

// PerfettoTrace is a span tree rendered in the Chrome/Perfetto
// trace_event JSON shape, ready to open in a flamegraph viewer.
type PerfettoTrace = obs.PerfettoTrace

// PerfettoFromSpan converts a rendered trace (Trace.JSON) to
// trace_event form. Nil in, nil out.
func PerfettoFromSpan(root *SpanJSON) *PerfettoTrace { return obs.PerfettoFromSpan(root) }

// ExplainReport is a query's structured plan + execution profile: the
// algorithm and pruning rules chosen, the Rule-1 keyword order, the
// window/pipeline policy, and the per-rule/per-phase cost counters the
// run actually incurred. See Dataset.Explain.
type ExplainReport = core.ExplainReport

// ExplainPlan is the plan section of an ExplainReport.
type ExplainPlan = core.ExplainPlan

// ExplainProfile is the execution-profile section of an ExplainReport.
type ExplainProfile = core.ExplainProfile

// ExplainShard is one shard's dispatch record in a sharded
// ExplainReport (filled by the serving layer).
type ExplainShard = core.ExplainShard

// PanicError reports a panic recovered during query evaluation: the
// query failed, but the dataset and the process are intact. Detect it
// with errors.As to distinguish an internal fault (HTTP 500 territory)
// from a bad request.
type PanicError = core.PanicError

// ErrBadCoordinate rejects queries carrying NaN or infinite coordinates
// (or a NaN distance cap) before they reach the spatial index, whose
// comparisons silently misbehave on non-finite values. Detect with
// errors.Is.
var ErrBadCoordinate = errors.New("ksp: coordinates must be finite")

func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

func finitePoint(p Point) bool { return finite(p.X) && finite(p.Y) }

// Ranking is the aggregate scoring function f(looseness, distance).
type Ranking = core.Ranking

// ProductRanking is f = L × S (Equation 2 of the paper; the default).
type ProductRanking = core.ProductRanking

// WeightedSumRanking is f = β·L + (1−β)·S (Equation 1).
type WeightedSumRanking = core.WeightedSumRanking

// Triple is an RDF statement for programmatic ingestion.
type Triple = rdf.Triple

// Direction selects how semantic trees grow from their roots.
type Direction = rdf.Direction

// Traversal directions.
const (
	// Outgoing follows subject→object edges (the paper's definition).
	Outgoing = rdf.Outgoing
	// Undirected disregards edge direction (the paper's future-work
	// variant).
	Undirected = rdf.Undirected
)

// Algorithm selects the query evaluation strategy.
type Algorithm int

// The four strategies of the paper's evaluation.
const (
	// AlgoBSP is the basic method (Section 3).
	AlgoBSP Algorithm = iota
	// AlgoSPP adds unqualified-place and dynamic-bound pruning
	// (Section 4).
	AlgoSPP
	// AlgoSP adds the α-radius bounds over places and R-tree nodes
	// (Section 5) — the paper's fastest.
	AlgoSP
	// AlgoTA is the threshold-algorithm baseline (Section 6.2.6).
	AlgoTA
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case AlgoBSP:
		return "BSP"
	case AlgoSPP:
		return "SPP"
	case AlgoSP:
		return "SP"
	case AlgoTA:
		return "TA"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Config controls index construction.
type Config struct {
	// Direction of semantic-tree growth; Outgoing matches the paper.
	Direction Direction
	// AlphaRadius is the α of the word-neighbourhood index; 0 disables it
	// (and with it AlgoSP). The paper recommends α = 3.
	AlphaRadius int
	// Reachability enables the keyword reachability index behind Pruning
	// Rule 1 (required by AlgoSPP).
	Reachability bool
	// Ranking overrides the scoring function; nil means ProductRanking.
	Ranking Ranking
	// DiskIndexPath, when non-empty, spills the document inverted index
	// to this file and serves posting lists from disk per query — the
	// disk-resident setting the paper evaluates under. Empty keeps the
	// index in memory.
	DiskIndexPath string
	// DocStorePath, when non-empty, spills the vertex documents to this
	// file after index construction, serving them through an LRU cache —
	// the out-of-core representation the paper points to for data beyond
	// main memory (footnote 1). Search is unaffected (keyword matching
	// goes through the inverted index); Describe pages from disk.
	DocStorePath string
	// Mmap serves every disk-resident structure (DiskIndexPath,
	// DocStorePath, LoadSnapshotDisk) through a read-only memory mapping
	// instead of positioned reads: posting lists and documents become
	// zero-copy slices of the page cache. Platforms without mmap support
	// silently fall back to positioned reads. Results are identical in
	// either mode.
	Mmap bool
	// LoosenessCacheEntries enables the engine's cross-query looseness
	// cache with the given entry capacity: exact L(Tp) values and Rule-2
	// lower bounds are remembered per (place, keyword-set) and reused by
	// later queries, skipping TQSP constructions without changing any
	// answer. 0 disables the cache; negative selects the built-in default
	// capacity.
	LoosenessCacheEntries int
	// RemoveStopwords drops common English glue words from documents and
	// query keywords alike.
	RemoveStopwords bool
	// Stemming applies Porter stemming to documents and keywords, so
	// morphological variants match ("architecture" ~ "architectural").
	Stemming bool
}

func (c Config) analyzer() text.Analyzer {
	return text.Analyzer{RemoveStopwords: c.RemoveStopwords, Stemming: c.Stemming}
}

// DefaultConfig returns the paper's recommended setup: outgoing edges,
// α = 3, reachability on, product ranking.
func DefaultConfig() Config {
	return Config{Direction: Outgoing, AlphaRadius: 3, Reachability: true}
}

// Dataset is an immutable, fully indexed spatial RDF dataset. It is safe
// for concurrent queries.
type Dataset struct {
	g      *rdf.Graph
	engine *core.Engine
	cfg    Config
	snap   *store.Snapshot // non-nil when opened disk-resident (LoadSnapshotDisk)
}

// Close releases resources a disk-resident dataset holds open (the
// snapshot file backing documents and α postings). In-memory datasets
// need no Close; calling it is a harmless no-op. The dataset must not
// serve queries after Close.
func (d *Dataset) Close() error {
	if d.snap != nil {
		return d.snap.Close()
	}
	return nil
}

// Open parses N-Triples from r and indexes the data.
func Open(r io.Reader, cfg Config) (*Dataset, error) {
	b := rdf.NewBuilder()
	b.Analyzer = cfg.analyzer()
	if _, err := nt.Load(r, b); err != nil {
		return nil, err
	}
	return finish(b, cfg)
}

// OpenFile is Open over a file path.
func OpenFile(path string, cfg Config) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//ksplint:ignore droppederr -- file opened read-only; Close cannot lose data
	defer f.Close()
	return Open(f, cfg)
}

func finish(b *rdf.Builder, cfg Config) (*Dataset, error) {
	return NewDatasetFromGraph(b.Build(), cfg)
}

// NewDatasetFromGraph indexes an already-built graph into a Dataset,
// applying cfg exactly like Open does after parsing. It exists for
// in-module tooling — the bench suite's load harness feeds synthetic
// graphs (internal/gen) straight into a live server — and is not
// callable from outside the module, since the graph type lives in an
// internal package.
func NewDatasetFromGraph(g *rdf.Graph, cfg Config) (*Dataset, error) {
	e := core.NewEngine(g, cfg.Direction)
	if cfg.Ranking != nil {
		e.Rank = cfg.Ranking
	}
	if cfg.Reachability {
		e.EnableReach()
	}
	if cfg.AlphaRadius > 0 {
		e.EnableAlpha(cfg.AlphaRadius)
	}
	if cfg.DiskIndexPath != "" {
		if _, err := e.UseDiskDocIndexMode(cfg.DiskIndexPath, cfg.Mmap); err != nil {
			return nil, err
		}
	}
	if cfg.DocStorePath != "" {
		if err := g.SpillDocsMode(cfg.DocStorePath, 0, cfg.Mmap); err != nil {
			return nil, err
		}
	}
	if cfg.LoosenessCacheEntries != 0 {
		e.EnableLoosenessCache(cfg.LoosenessCacheEntries)
	}
	return &Dataset{g: g, engine: e, cfg: cfg}, nil
}

// Search answers q with the strongest available algorithm: SP when the
// α-radius index exists, otherwise SPP when reachability exists,
// otherwise BSP.
func (d *Dataset) Search(q Query) ([]Result, error) {
	algo := AlgoBSP
	switch {
	case d.engine.Alpha != nil:
		algo = AlgoSP
	case d.engine.Reach != nil:
		algo = AlgoSPP
	}
	res, _, err := d.SearchWith(algo, q, Options{})
	return res, err
}

// SearchWith answers q with an explicit algorithm and returns its cost
// statistics.
func (d *Dataset) SearchWith(algo Algorithm, q Query, opts Options) ([]Result, *Stats, error) {
	if !finitePoint(q.Loc) {
		return nil, &Stats{}, fmt.Errorf("%w: query location (%v, %v)", ErrBadCoordinate, q.Loc.X, q.Loc.Y)
	}
	if math.IsNaN(opts.MaxDist) {
		return nil, &Stats{}, fmt.Errorf("%w: MaxDist is NaN", ErrBadCoordinate)
	}
	switch algo {
	case AlgoBSP:
		return d.engine.BSP(q, opts)
	case AlgoSPP:
		return d.engine.SPP(q, opts)
	case AlgoSP:
		return d.engine.SP(q, opts)
	case AlgoTA:
		return d.engine.TA(q, opts)
	default:
		return nil, nil, fmt.Errorf("ksp: unknown algorithm %v", algo)
	}
}

// Explain answers q exactly like SearchWith and additionally returns
// the structured plan + execution profile — the EXPLAIN surface behind
// /search?explain=1 and kspquery -explain. The report is assembled from
// the run's Stats; no span capture is involved.
func (d *Dataset) Explain(algo Algorithm, q Query, opts Options) ([]Result, *ExplainReport, error) {
	res, stats, err := d.SearchWith(algo, q, opts)
	if err != nil {
		return res, nil, err
	}
	return res, d.engine.Explain(algo.String(), q, opts, stats, len(res)), nil
}

// ExplainFor assembles an ExplainReport for a query that already ran
// (with SearchWith) and produced stats — the server uses it to attach
// EXPLAIN output without evaluating twice.
func (d *Dataset) ExplainFor(algo Algorithm, q Query, opts Options, stats *Stats, results int) *ExplainReport {
	return d.engine.Explain(algo.String(), q, opts, stats, results)
}

// AlphaRadius reports the α of the word-neighbourhood index, 0 when the
// index is absent (diagnostics surfaces record it as part of the query's
// plan context).
func (d *Dataset) AlphaRadius() int {
	if a := d.engine.Alpha; a != nil {
		return a.Alpha
	}
	return 0
}

// Save persists the dataset — the graph and, when present, the expensive
// α-radius index — to a snapshot file. LoadSnapshot restores it without
// re-running the α-neighbourhood construction, which dominates
// preprocessing time (Table 5 of the paper).
func (d *Dataset) Save(path string) error {
	snap := &store.Snapshot{Graph: d.g, Dir: d.cfg.Direction}
	if a := d.engine.Alpha; a != nil {
		place, ok1 := a.PlaceIdx.(*invindex.MemIndex)
		node, ok2 := a.NodeIdx.(*invindex.MemIndex)
		if !ok1 || !ok2 {
			return fmt.Errorf("ksp: α index is not memory-resident; cannot snapshot")
		}
		snap.AlphaRadius = a.Alpha
		snap.AlphaPlace = place
		snap.AlphaNode = node
	}
	return store.SaveFile(path, snap)
}

// LoadSnapshot restores a dataset saved with Save. The cheap indexes
// (R-tree, document index, reachability when cfg.Reachability is set) are
// rebuilt; the α-radius index comes from the snapshot, overriding
// cfg.AlphaRadius. The traversal direction is taken from the snapshot.
func LoadSnapshot(path string, cfg Config) (*Dataset, error) {
	snap, err := store.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return datasetFromSnapshot(snap, cfg)
}

// LoadSnapshotDisk restores a dataset saved with Save in disk-resident
// mode: the graph structure and cheap indexes live in memory exactly as
// with LoadSnapshot, but the vertex documents and the α-radius posting
// lists are served from the snapshot file on demand — through a
// read-only memory mapping when cfg.Mmap is set, positioned reads
// otherwise. Query results are identical to LoadSnapshot's. The dataset
// holds the snapshot file open; call Close when done.
//
// cfg.DocStorePath is ignored (the documents are already disk-resident).
func LoadSnapshotDisk(path string, cfg Config) (*Dataset, error) {
	snap, err := store.OpenDisk(path, cfg.Mmap)
	if err != nil {
		return nil, err
	}
	cfg.DocStorePath = ""
	ds, err := datasetFromSnapshot(snap, cfg)
	if err != nil {
		//ksplint:ignore droppederr -- error-path cleanup; the load error already wins
		snap.Close()
		return nil, err
	}
	ds.snap = snap
	return ds, nil
}

// datasetFromSnapshot assembles the engine around a restored snapshot:
// cheap indexes are rebuilt, the α index comes from the snapshot when
// present, and the traversal direction always follows the snapshot.
func datasetFromSnapshot(snap *store.Snapshot, cfg Config) (*Dataset, error) {
	cfg.Direction = snap.Dir
	g := snap.Graph
	e := core.NewEngine(g, cfg.Direction)
	if cfg.Ranking != nil {
		e.Rank = cfg.Ranking
	}
	if cfg.Reachability {
		e.EnableReach()
	}
	if ix := snap.AlphaIndex(); ix != nil {
		e.SetAlpha(ix)
	} else if cfg.AlphaRadius > 0 {
		e.EnableAlpha(cfg.AlphaRadius)
	}
	if cfg.DiskIndexPath != "" {
		if _, err := e.UseDiskDocIndexMode(cfg.DiskIndexPath, cfg.Mmap); err != nil {
			return nil, err
		}
	}
	if cfg.DocStorePath != "" {
		if err := g.SpillDocsMode(cfg.DocStorePath, 0, cfg.Mmap); err != nil {
			return nil, err
		}
	}
	if cfg.LoosenessCacheEntries != 0 {
		e.EnableLoosenessCache(cfg.LoosenessCacheEntries)
	}
	return &Dataset{g: g, engine: e, cfg: cfg}, nil
}

// CacheStats reports the looseness cache's cumulative hit/miss counters
// and entry count; ok is false when Config.LoosenessCacheEntries left
// the cache disabled.
func (d *Dataset) CacheStats() (CacheStats, bool) { return d.engine.CacheStats() }

// WindowStats reports the windowed candidate scheduler's lifetime
// totals: fills, candidates popped, and how many were killed before a
// TQSP construction. All zeros until a windowed query runs (every query
// is windowed unless Options.Window is 1).
func (d *Dataset) WindowStats() WindowStats { return d.engine.WindowStats() }

// SchedStats reports the work-stealing scheduler's lifetime totals:
// parallel pipeline runs, deque pops split into own pops and steals,
// cumulative worker starvation time, and the current starvation-feedback
// pipeline-depth hint. All zeros until a parallel query
// (Options.Parallelism > 1) runs.
func (d *Dataset) SchedStats() SchedStats { return d.engine.SchedStats() }

// EnableMetrics registers the engine's instruments (query counters and
// latency histograms per algorithm, TQSP and pruning counters, looseness
// cache and R-tree access counters) in reg and starts recording into
// them. Call once, before serving queries; a dataset without metrics
// enabled evaluates queries with zero observability overhead.
func (d *Dataset) EnableMetrics(reg *Registry) { d.engine.EnableMetrics(reg) }

// URI returns the URI (or blank-node label) of a vertex from a Result or
// Tree.
func (d *Dataset) URI(v uint32) string { return d.g.URI(v) }

// TightestTrees returns every tightest qualified semantic place rooted at
// the given place vertex — all trees tied at the minimum looseness, up to
// limit — together with that looseness (+Inf when the place cannot cover
// the keywords). This is option (2) of the paper's footnote 2, where a
// kSP result carries the full set of tied trees rather than an arbitrary
// representative.
func (d *Dataset) TightestTrees(place uint32, keywords []string, limit int) ([]*Tree, float64, error) {
	return d.engine.TQSPSet(place, keywords, limit)
}

// SearchBatch evaluates many queries concurrently (the dataset is
// immutable, so queries parallelize perfectly) and returns the results in
// input order. parallelism <= 0 selects GOMAXPROCS.
func (d *Dataset) SearchBatch(queries []Query, parallelism int) ([][]Result, error) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	out := make([][]Result, len(queries))
	errs := make([]error, len(queries))
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for i, q := range queries {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, q Query) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i], errs[i] = d.Search(q)
		}(i, q)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// KeywordSearch answers a location-free keyword query: the k places with
// the tightest semantic trees covering all keywords, ranked purely by
// looseness (the classic RDF keyword-search model restricted to place
// roots). Result.Dist is zero and Score equals Looseness.
func (d *Dataset) KeywordSearch(keywords []string, k int) ([]Result, error) {
	res, _, err := d.engine.KeywordTopK(keywords, k, Options{})
	return res, err
}

// NearestPlaces returns up to n places in ascending Euclidean distance
// from loc, irrespective of keywords. Non-finite coordinates yield no
// results (R-tree distance ordering is undefined on them).
func (d *Dataset) NearestPlaces(loc Point, n int) []Result {
	if !finitePoint(loc) {
		return nil
	}
	br := d.engine.Tree.NewBrowser(loc)
	var out []Result
	for len(out) < n {
		it, dist, ok := br.Next()
		if !ok {
			break
		}
		out = append(out, Result{Place: it.ID, Dist: dist})
	}
	return out
}

// PlacesWithin returns the places inside the axis-aligned rectangle
// spanned by the two corner points, in ascending vertex-ID order.
// Non-finite corners yield no results.
func (d *Dataset) PlacesWithin(a, b Point) []uint32 {
	if !finitePoint(a) || !finitePoint(b) {
		return nil
	}
	r := geo.RectFromPoint(a).ExpandPoint(b)
	items := d.engine.Tree.Search(r, nil)
	out := make([]uint32, len(items))
	for i, it := range items {
		out[i] = it.ID
	}
	sortUint32(out)
	return out
}

func sortUint32(s []uint32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// VertexByURI resolves an entity URI to the vertex ID used in Results and
// Trees; ok is false for unknown URIs.
func (d *Dataset) VertexByURI(uri string) (uint32, bool) { return d.g.VertexByURI(uri) }

// Location returns the coordinates of a place vertex; ok is false for
// non-places.
func (d *Dataset) Location(v uint32) (Point, bool) {
	if int(v) >= d.g.NumVertices() || !d.g.IsPlace(v) {
		return Point{}, false
	}
	return d.g.Loc(v), true
}

// Describe returns the document terms of a vertex — the keyword set the
// engine matches against.
func (d *Dataset) Describe(v uint32) []string {
	doc := d.g.Doc(v)
	out := make([]string, len(doc))
	for i, t := range doc {
		out[i] = d.g.Vocab.Term(t)
	}
	return out
}

// DatasetStats summarizes a dataset.
type DatasetStats struct {
	Vertices int
	Edges    int
	Places   int
	Terms    int
	// DocsOnDisk reports whether vertex documents are served from disk
	// (a spill file or a disk-resident snapshot) rather than memory.
	DocsOnDisk bool
	// AlphaOnDisk reports whether the α-radius posting lists are served
	// from a disk-resident snapshot rather than memory.
	AlphaOnDisk bool
	// MemoryMapped reports whether at least one disk-resident structure
	// (documents, α postings, document inverted index) is served through
	// a memory mapping rather than positioned reads.
	MemoryMapped bool
}

// Stats returns dataset summary statistics.
func (d *Dataset) Stats() DatasetStats {
	st := DatasetStats{
		Vertices:   d.g.NumVertices(),
		Edges:      d.g.NumEdges(),
		Places:     len(d.g.Places()),
		Terms:      d.g.Vocab.Len(),
		DocsOnDisk: d.g.DocsOnDisk(),
	}
	if a := d.engine.Alpha; a != nil {
		if _, ok := a.PlaceIdx.(*invindex.MemIndex); !ok {
			st.AlphaOnDisk = true
		}
	}
	if d.g.DocsMapped() || (d.snap != nil && d.snap.Mapped()) {
		st.MemoryMapped = true
	}
	if di, ok := d.engine.Doc.(*invindex.DiskIndex); ok && di.Mapped() {
		st.MemoryMapped = true
	}
	return st
}

// Builder assembles a dataset programmatically, without N-Triples.
type Builder struct {
	b *rdf.Builder
}

// NewBuilder returns an empty dataset builder with plain tokenization.
// Use NewBuilderWith to enable stemming or stopword removal — text is
// analyzed as it is added, so the analyzer must be fixed up front (the
// Config passed to Build does not change it).
func NewBuilder() *Builder {
	return &Builder{b: rdf.NewBuilder()}
}

// NewBuilderWith returns a dataset builder whose text analysis follows
// cfg's RemoveStopwords/Stemming settings.
func NewBuilderWith(cfg Config) *Builder {
	b := rdf.NewBuilder()
	b.Analyzer = cfg.analyzer()
	return &Builder{b: b}
}

// AddTriple ingests one RDF statement (literal objects fold into the
// subject's document, entity objects become graph edges; see the paper's
// document-construction scheme). It reports whether the triple was used.
func (b *Builder) AddTriple(t Triple) bool { return b.b.AddTriple(t) }

// AddFact records an entity-to-entity statement.
func (b *Builder) AddFact(subject, predicate, object string) {
	b.b.AddTriple(rdf.Triple{S: rdf.NewIRI(subject), P: rdf.NewIRI(predicate), O: rdf.NewIRI(object)})
}

// AddLabel attaches literal text to an entity's document.
func (b *Builder) AddLabel(subject, predicate, text string) {
	b.b.AddTriple(rdf.Triple{S: rdf.NewIRI(subject), P: rdf.NewIRI(predicate), O: rdf.NewLiteral(text)})
}

// AddPlace declares an entity as a place at the given coordinates.
func (b *Builder) AddPlace(subject string, loc Point) {
	v := b.b.AddVertex(subject)
	b.b.SetLocation(v, loc)
}

// Build freezes the data and constructs all indexes. The Builder must not
// be reused afterwards.
func (b *Builder) Build(cfg Config) (*Dataset, error) {
	return finish(b.b, cfg)
}
