package ksp_test

// One testing.B benchmark per table and figure of the paper's evaluation
// (Section 6). Each benchmark executes the corresponding experiment of
// internal/bench at a laptop scale; `go test -bench .` therefore
// regenerates every reported series. cmd/kspbench runs the same
// experiments at configurable scale and prints the full tables.

import (
	"io"
	"sync"
	"testing"

	"ksp"
	"ksp/internal/bench"
)

// benchScale keeps the full `go test -bench .` run in the minutes range;
// kspbench -scale raises it for closer-to-paper runs.
const (
	benchScale   = 4000
	benchQueries = 5
)

var (
	suiteOnce sync.Once
	suite     *bench.Suite
)

// benchSuite lazily builds one shared suite; dataset and index
// construction stay out of the measured loops.
func benchSuite(b *testing.B) *bench.Suite {
	suiteOnce.Do(func() {
		suite = bench.NewSuite(benchScale, benchQueries, 1, io.Discard)
		suite.Data(bench.DBpediaLike)
		suite.Data(bench.YagoLike)
	})
	return suite
}

func runExperiment(b *testing.B, id string) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Experiment(id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4Storage regenerates Table 4 (index storage costs).
func BenchmarkTable4Storage(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkTable5Preprocessing regenerates Table 5 (index build times).
func BenchmarkTable5Preprocessing(b *testing.B) { runExperiment(b, "table5") }

// BenchmarkTable6AlphaSize regenerates Table 6 (α-WN sizes, α ∈ {1,2,3,5}).
func BenchmarkTable6AlphaSize(b *testing.B) { runExperiment(b, "table6") }

// BenchmarkTable7Samples regenerates Table 7 (random-jump samples).
func BenchmarkTable7Samples(b *testing.B) { runExperiment(b, "table7") }

// BenchmarkFig3VaryK regenerates Figure 3 (varying k, DBpedia-like):
// runtime split, TQSP computations, R-tree node accesses for BSP/SPP/SP.
func BenchmarkFig3VaryK(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig4VaryK regenerates Figure 4 (varying k, Yago-like).
func BenchmarkFig4VaryK(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5VaryKeywords regenerates Figure 5 (varying |q.ψ|).
func BenchmarkFig5VaryKeywords(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6VaryAlpha regenerates Figure 6 (SP runtime as α varies).
func BenchmarkFig6VaryAlpha(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7Scalability regenerates Figure 7 (random-jump size sweep).
func BenchmarkFig7Scalability(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8QueryClasses regenerates Figure 8 (SDLL/LDLL/O result
// spatial distance and looseness).
func BenchmarkFig8QueryClasses(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9LargeLooseness regenerates Figure 9 (runtime on hard
// SDLL/LDLL workloads).
func BenchmarkFig9LargeLooseness(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10TA regenerates Figure 10 (TA vs BSP/SPP/SP).
func BenchmarkFig10TA(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkAblation measures the pruning-rule, spatial-source and
// edge-direction ablations called out in DESIGN.md.
func BenchmarkAblation(b *testing.B) { runExperiment(b, "ablation") }

// BenchmarkFreqBands measures the supplementary keyword-frequency
// experiment (rare vs frequent query keywords).
func BenchmarkFreqBands(b *testing.B) { runExperiment(b, "freq") }

// --- Micro-benchmarks over the public API ---

func apiDataset(b *testing.B) *ksp.Dataset {
	b.Helper()
	bd := ksp.NewBuilder()
	for i := 0; i < 200; i++ {
		bd.AddPlace(placeName(i), ksp.Point{X: float64(i % 20), Y: float64(i / 20)})
		bd.AddLabel(placeName(i), "d", "alpha beta gamma delta")
	}
	ds, err := bd.Build(ksp.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func placeName(i int) string {
	return "p" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676))
}

// BenchmarkSearchSP measures a full SP query through the public API.
func BenchmarkSearchSP(b *testing.B) {
	ds := apiDataset(b)
	q := ksp.Query{Loc: ksp.Point{X: 5, Y: 5}, Keywords: []string{"alpha", "gamma"}, K: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ds.Search(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchObsDisabled and BenchmarkSearchObsEnabled are the
// observability-overhead guard: the same query with metrics off (the
// nil fast path) and with a registry attached. CI runs both so a
// regression in either path shows up as a diverging pair.
func BenchmarkSearchObsDisabled(b *testing.B) { benchSearchObs(b, false) }

// BenchmarkSearchObsEnabled measures the instrumented path: per-query
// Stats flush into the registry plus the live R-tree access hook.
func BenchmarkSearchObsEnabled(b *testing.B) { benchSearchObs(b, true) }

func benchSearchObs(b *testing.B, metrics bool) {
	ds := apiDataset(b)
	if metrics {
		ds.EnableMetrics(ksp.NewRegistry())
	}
	q := ksp.Query{Loc: ksp.Point{X: 5, Y: 5}, Keywords: []string{"alpha", "gamma"}, K: 5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ds.Search(q); err != nil {
			b.Fatal(err)
		}
	}
}
