package ksp

import (
	"fmt"

	"ksp/internal/geo"
	"ksp/internal/rtree"
)

// Rect is an axis-aligned bounding rectangle (shard MBRs, Bounds).
type Rect = geo.Rect

// Bounds returns the minimum bounding rectangle of the dataset's places;
// ok is false when the dataset holds no places. Shard coordinators use
// this MBR for MinDist-based shard pruning.
func (d *Dataset) Bounds() (Rect, bool) {
	if d.engine.Tree.Len() == 0 {
		return Rect{}, false
	}
	return d.engine.Tree.Root().Rect, true
}

// SpatialPlaces reports how many places this dataset's spatial index
// holds. On a full dataset it equals Stats().Places; on a
// PartitionSpatial tile it is the tile's own share (the tiles share the
// graph, so Stats counts every place either way).
func (d *Dataset) SpatialPlaces() int { return d.engine.Tree.Len() }

// PartitionSpatial splits the dataset into n spatially coherent shards:
// the places are put into Sort-Tile-Recursive order and cut into n
// contiguous runs, so each shard covers a compact tile of the plane
// (tight MBRs make the coordinator's MinDist pruning effective). Each
// shard is a full Dataset over its own R-tree and α-radius index but
// shares the graph, document index, reachability labels and looseness
// cache with the receiver — the union of the shards' candidate
// universes is exactly the receiver's, with no place in two shards.
//
// n = 1 returns the receiver itself. When n exceeds the number of
// places, the trailing shards are empty.
func (d *Dataset) PartitionSpatial(n int) ([]*Dataset, error) {
	if n < 1 {
		return nil, fmt.Errorf("ksp: PartitionSpatial wants n >= 1, got %d", n)
	}
	if n == 1 {
		return []*Dataset{d}, nil
	}
	places := d.g.Places()
	items := make([]rtree.Item, len(places))
	for i, p := range places {
		items[i] = rtree.Item{ID: p, Loc: d.g.Loc(p)}
	}
	per := (len(items) + n - 1) / n
	rtree.STRSort(items, per)
	shards := make([]*Dataset, n)
	for i := 0; i < n; i++ {
		start := i * per
		if start > len(items) {
			start = len(items)
		}
		end := start + per
		if end > len(items) {
			end = len(items)
		}
		run := make([]uint32, end-start)
		for j, it := range items[start:end] {
			run[j] = it.ID
		}
		shards[i] = &Dataset{g: d.g, engine: d.engine.Subset(run), cfg: d.cfg}
	}
	return shards, nil
}
