package ksp_test

// Integration tests spanning the full stack: synthetic generation ->
// N-Triples export -> load through the public API -> snapshot -> HTTP
// server, with algorithm agreement checked at every stage.

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"ksp"
	"ksp/internal/gen"
	"ksp/internal/nt"
	"ksp/internal/rdf"
	"ksp/internal/server"
)

func TestEndToEndPipeline(t *testing.T) {
	// 1. Generate a synthetic dataset and export it as N-Triples.
	g := gen.Generate(gen.YagoConfig(1500, 777))
	var buf bytes.Buffer
	if err := nt.WriteGraph(g, &buf); err != nil {
		t.Fatal(err)
	}
	ntPath := filepath.Join(t.TempDir(), "data.nt")
	if err := os.WriteFile(ntPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	// 2. Load through the public API.
	ds, err := ksp.OpenFile(ntPath, ksp.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	st := ds.Stats()
	if st.Places != len(g.Places()) {
		t.Fatalf("places changed across export/import: %d vs %d", st.Places, len(g.Places()))
	}
	if st.Vertices != g.NumVertices() {
		t.Fatalf("vertices changed: %d vs %d", st.Vertices, g.NumVertices())
	}

	// 3. Build a query from the original generator; keyword terms carry
	// over because the exporter writes them into label literals.
	qg := gen.NewQueryGen(g, rdf.Outgoing, 778)
	loc, kws := qg.Original(4)
	q := ksp.Query{Loc: ksp.Point{X: loc.X, Y: loc.Y}, Keywords: kws, K: 5}

	// 4. All four algorithms agree on the loaded data.
	var base []ksp.Result
	for _, algo := range []ksp.Algorithm{ksp.AlgoBSP, ksp.AlgoSPP, ksp.AlgoSP, ksp.AlgoTA} {
		res, _, err := ds.SearchWith(algo, q, ksp.Options{})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if base == nil {
			base = res
			continue
		}
		if len(res) != len(base) {
			t.Fatalf("%v: %d vs %d results", algo, len(res), len(base))
		}
		for i := range res {
			if res[i].Place != base[i].Place || math.Abs(res[i].Score-base[i].Score) > 1e-9 {
				t.Fatalf("%v result %d differs", algo, i)
			}
		}
	}

	// 5. Snapshot round trip preserves answers.
	snapPath := filepath.Join(t.TempDir(), "data.snap")
	if err := ds.Save(snapPath); err != nil {
		t.Fatal(err)
	}
	restored, err := ksp.LoadSnapshot(snapPath, ksp.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := restored.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(base) {
		t.Fatalf("snapshot changed result count: %d vs %d", len(res), len(base))
	}
	for i := range res {
		if restored.URI(res[i].Place) != ds.URI(base[i].Place) {
			t.Fatalf("snapshot result %d differs", i)
		}
	}

	// 6. The same query through the HTTP server.
	srv := httptest.NewServer(server.New(restored))
	defer srv.Close()
	u := srv.URL + "/search?x=" + trim(q.Loc.X) + "&y=" + trim(q.Loc.Y) + "&k=5&kw=" + joinComma(kws)
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP status %d", resp.StatusCode)
	}
	var sr server.SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) != len(base) {
		t.Fatalf("HTTP returned %d results, want %d", len(sr.Results), len(base))
	}
	for i := range sr.Results {
		if sr.Results[i].URI != ds.URI(base[i].Place) {
			t.Fatalf("HTTP result %d = %s, want %s", i, sr.Results[i].URI, ds.URI(base[i].Place))
		}
	}
}

func trim(f float64) string {
	b, _ := json.Marshal(f)
	return string(b)
}

func joinComma(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ","
		}
		out += s
	}
	return out
}

// Radius-restricted search through the public API.
func TestMaxDistPublic(t *testing.T) {
	b := ksp.NewBuilder()
	b.AddPlace("near", ksp.Point{X: 1, Y: 0})
	b.AddLabel("near", "d", "coffee")
	b.AddPlace("far", ksp.Point{X: 50, Y: 0})
	b.AddLabel("far", "d", "coffee")
	ds, err := b.Build(ksp.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := ksp.Query{Loc: ksp.Point{}, Keywords: []string{"coffee"}, K: 10}
	res, _, err := ds.SearchWith(ksp.AlgoSP, q, ksp.Options{MaxDist: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || ds.URI(res[0].Place) != "near" {
		t.Fatalf("MaxDist filter failed: %+v", res)
	}
	res, _, err = ds.SearchWith(ksp.AlgoSP, q, ksp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("unrestricted search: %+v", res)
	}
}
