#!/bin/sh
# Full pre-commit gate: vet, build, and the complete test suite under
# the race detector (the parallel pipeline and the shared looseness
# cache are only trustworthy race-clean).
#
# Usage: scripts/check.sh
set -eu
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...
# The faultinject tag flips on strict injection-point checking; vetting
# that build keeps the chaos harness compiling even when no test uses it.
go vet -tags faultinject ./...
echo "== go build =="
go build ./...
echo "== go test -race =="
go test -race ./...
echo "OK"
