#!/bin/sh
# Full pre-commit gate: format, vet, lint, build, and the complete test
# suite under the race detector (the parallel pipeline and the shared
# looseness cache are only trustworthy race-clean). Mirrors the CI
# lint + race-vet jobs so a clean local run predicts a green pipeline.
#
# Usage: scripts/check.sh
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l cmd internal examples ksp.go)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi
echo "== go vet =="
go vet ./...
# The faultinject tag flips on strict injection-point checking; vetting
# that build keeps the chaos harness compiling even when no test uses it.
go vet -tags faultinject ./...
echo "== ksplint =="
# -unused-ignores runs every check AND audits the //ksplint:ignore
# comments: a suppression that no longer suppresses anything fails the
# gate alongside ordinary findings, under both build-tag sets.
go run ./cmd/ksplint -unused-ignores ./...
go run ./cmd/ksplint -tags faultinject -unused-ignores ./...
echo "== go build =="
go build ./...
echo "== go test -race =="
go test -race ./...
go test -race -tags faultinject ./...
echo "OK"
