// Command kspserver serves kSP queries over HTTP.
//
// Usage:
//
//	kspserver -data data.nt -addr :8080
//	kspserver -snapshot data.snap -addr :8080
//
// Endpoints: /search, /describe, /stats, /healthz (see internal/server).
// Example:
//
//	curl 'localhost:8080/search?x=43.5&y=4.7&kw=ancient,roman&k=5&trees=1'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"ksp"
	"ksp/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kspserver: ")
	var (
		data     = flag.String("data", "", "N-Triples dataset to load")
		snapshot = flag.String("snapshot", "", "snapshot produced by Dataset.Save (faster startup)")
		addr     = flag.String("addr", ":8080", "listen address")
		alphaR   = flag.Int("alpha", 3, "α radius (N-Triples loading only)")
		maxK     = flag.Int("maxk", 100, "largest k a request may ask for")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-query evaluation cap")
	)
	flag.Parse()

	cfg := ksp.DefaultConfig()
	cfg.AlphaRadius = *alphaR

	var (
		ds  *ksp.Dataset
		err error
	)
	start := time.Now()
	switch {
	case *snapshot != "":
		ds, err = ksp.LoadSnapshot(*snapshot, cfg)
	case *data != "":
		ds, err = ksp.OpenFile(*data, cfg)
	default:
		log.Fatal("need -data or -snapshot")
	}
	if err != nil {
		log.Fatal(err)
	}
	st := ds.Stats()
	fmt.Printf("loaded %d vertices, %d edges, %d places in %v\n",
		st.Vertices, st.Edges, st.Places, time.Since(start).Round(time.Millisecond))

	s := server.New(ds)
	s.MaxK = *maxK
	s.Timeout = *timeout
	fmt.Printf("listening on %s\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, s))
}
