// Command kspserver serves kSP queries over HTTP.
//
// Usage:
//
//	kspserver -data data.nt -addr :8080
//	kspserver -snapshot data.snap -addr :8080
//	kspserver -data data.nt -shards 4                 # in-process scatter-gather
//	kspserver -shard-addrs http://10.0.0.2:8080,http://10.0.0.3:8080
//
// -shards N partitions the loaded dataset into N spatial tiles and
// serves /search by fault-tolerant scatter-gather across them;
// -shard-addrs instead federates remote kspserver peers over their
// /search wire format (the local dataset then only serves /keyword,
// /nearest and /describe). See internal/shard for the resilience
// policy (retries, hedging, circuit breakers).
//
// Endpoints: /search, /describe, /stats, /metrics, /debug/queries,
// /debug/slow, /healthz (see internal/server). Example:
//
//	curl 'localhost:8080/search?x=43.5&y=4.7&kw=ancient,roman&k=5&trees=1'
//	curl 'localhost:8080/metrics'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registered on the side listener only (-pprof)
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ksp"
	"ksp/internal/server"
	"ksp/internal/shard"
)

func main() {
	var (
		data     = flag.String("data", "", "N-Triples dataset to load")
		snapshot = flag.String("snapshot", "", "snapshot produced by Dataset.Save (faster startup)")
		mmap     = flag.Bool("mmap", false, "serve documents and α postings straight from the snapshot file via a read-only memory mapping (requires -snapshot; falls back to positioned reads where mmap is unavailable)")
		addr     = flag.String("addr", ":8080", "listen address")
		alphaR   = flag.Int("alpha", 3, "α radius (N-Triples loading only)")
		maxK     = flag.Int("maxk", 100, "largest k a request may ask for")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-query evaluation cap")
		parallel = flag.Int("parallel", 0, "default pipeline workers per query (0 = serial; requests may override with ?parallel=, capped at GOMAXPROCS)")
		window   = flag.Int("window", 0, "default candidate window per query (0 = adaptive, 1 = classic one-at-a-time loop, W>=2 fixed; requests may override with ?window=)")
		depth    = flag.Int("pipeline-depth", 0, "per-worker deque bound for parallel queries (0 = derived from workers and window, self-tuned from starvation feedback)")
		cache    = flag.Int("cache", 0, "looseness cache entries (0 = disabled, negative = built-in default)")
		pprof    = flag.String("pprof", "", "side listen address for net/http/pprof (empty = disabled), e.g. localhost:6060")

		shards      = flag.Int("shards", 0, "partition the dataset into N spatial tiles and serve /search by scatter-gather (0 = single engine)")
		shardAddrs  = flag.String("shard-addrs", "", "comma-separated base URLs of remote kspserver shards to federate (mutually exclusive with -shards)")
		shardWait   = flag.Duration("shard-timeout", 2*time.Second, "per-attempt shard call deadline")
		shardTries  = flag.Int("shard-attempts", 3, "shard call attempts per query, first included")
		shardHedge  = flag.Duration("shard-hedge-after", 250*time.Millisecond, "hedge a second shard attempt after this long (negative = no hedging)")
		shardFanout = flag.Int("shard-fanout", 0, "concurrent shard calls per query, dispatched by ascending MinDist (0 = all shards at once)")

		admitWidth = flag.Int("admit-width", 0, "total pipeline width admitted concurrently (0 = 2×GOMAXPROCS, negative = unlimited)")
		admitQueue = flag.Int("admit-queue", 0, "requests that may queue for admission before shedding 429 (0 = 16, negative = no queue)")
		queueWait  = flag.Duration("queue-wait", time.Second, "longest a request queues for admission before shedding 503")
		drain      = flag.Duration("drain", 15*time.Second, "in-flight request drain budget on SIGTERM/SIGINT")

		slowThreshold = flag.Duration("slow-threshold", 500*time.Millisecond, "retain and log queries slower than this at /debug/slow (0 = every query, negative = disable the slow-query log)")
		slowRing      = flag.Int("slow-ring", 64, "slow queries retained at /debug/slow")

		logLevel  = flag.String("log-level", "info", "log level: debug | info | warn | error (debug includes per-request access logs)")
		logFormat = flag.String("log-format", "text", "log format: text | json")
	)
	flag.Parse()

	logger, err := buildLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kspserver:", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	cfg := ksp.DefaultConfig()
	cfg.AlphaRadius = *alphaR
	cfg.LoosenessCacheEntries = *cache

	var ds *ksp.Dataset
	start := time.Now()
	switch {
	case *mmap && *snapshot == "":
		fatal(logger, "-mmap requires -snapshot")
	case *mmap:
		cfg.Mmap = true
		ds, err = ksp.LoadSnapshotDisk(*snapshot, cfg)
	case *snapshot != "":
		ds, err = ksp.LoadSnapshot(*snapshot, cfg)
	case *data != "":
		ds, err = ksp.OpenFile(*data, cfg)
	default:
		fatal(logger, "need -data or -snapshot")
	}
	if err != nil {
		fatal(logger, err.Error())
	}
	st := ds.Stats()
	logger.Info("dataset loaded",
		"vertices", st.Vertices, "edges", st.Edges, "places", st.Places,
		"docsOnDisk", st.DocsOnDisk, "mmap", st.MemoryMapped,
		"loadTime", time.Since(start).Round(time.Millisecond).String())

	if *pprof != "" {
		// The profiling endpoints stay off the public listener: pprof's
		// init registers on http.DefaultServeMux, which only this side
		// server exposes.
		//ksplint:ignore leakcheck -- diagnostics listener lives for the whole process; the OS reaps it at exit
		go func() {
			logger.Info("pprof listening", "addr", *pprof)
			if err := http.ListenAndServe(*pprof, nil); err != nil {
				logger.Error("pprof listener failed", "error", err.Error())
			}
		}()
	}

	s := server.New(ds)
	s.Logger = logger
	s.MaxK = *maxK
	s.Timeout = *timeout
	s.DefaultParallel = s.MaxParallel
	if *parallel >= 0 {
		s.DefaultParallel = *parallel
	}
	s.DefaultWindow = *window
	s.PipelineDepth = *depth
	s.AdmitCapacity = *admitWidth
	s.AdmitQueue = *admitQueue
	s.QueueTimeout = *queueWait
	if *slowThreshold >= 0 {
		s.EnableSlowLog(*slowRing, *slowThreshold)
	}

	coord, err := buildShards(ds, *shards, *shardAddrs, shard.Config{
		AttemptTimeout: *shardWait,
		MaxAttempts:    *shardTries,
		HedgeAfter:     *shardHedge,
		FanOut:         *shardFanout,
	})
	if err != nil {
		fatal(logger, err.Error())
	}
	if coord != nil {
		s.AttachShards(coord)
		up, total := coord.Healthy()
		logger.Info("scatter-gather enabled", "shardsUp", up, "shardsTotal", total)
	}

	srv := &http.Server{Addr: *addr, Handler: s}
	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr)
		errc <- srv.ListenAndServe()
	}()

	// SIGTERM/SIGINT drains gracefully: readiness flips off first so
	// load balancers stop routing here, then in-flight requests get the
	// drain budget to finish before the listener dies.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		fatal(logger, err.Error())
	case sig := <-sigc:
		logger.Info("draining", "signal", sig.String(), "budget", drain.String())
		s.SetReady(false)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fatal(logger, "drain incomplete: "+err.Error())
		}
		if coord != nil {
			// After the drain: no in-flight gather needs the health checker
			// or the breakers anymore.
			coord.Close()
		}
		if err := ds.Close(); err != nil {
			logger.Error("dataset close failed", "error", err.Error())
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(logger, err.Error())
		}
	}
}

// buildShards constructs the scatter-gather coordinator from the shard
// flags: -shards N tiles the loaded dataset in-process, -shard-addrs
// federates remote peers. nil means single-engine serving.
func buildShards(ds *ksp.Dataset, n int, addrs string, cfg shard.Config) (*shard.Coordinator, error) {
	if n > 0 && addrs != "" {
		return nil, errors.New("-shards and -shard-addrs are mutually exclusive")
	}
	var members []shard.Shard
	switch {
	case addrs != "":
		for _, a := range strings.Split(addrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				members = append(members, shard.NewRemote(a, a, nil))
			}
		}
		if len(members) == 0 {
			return nil, errors.New("-shard-addrs names no shards")
		}
	case n > 0:
		tiles, err := ds.PartitionSpatial(n)
		if err != nil {
			return nil, err
		}
		for i, tile := range tiles {
			members = append(members, shard.NewLocal(fmt.Sprintf("tile%d", i), tile))
		}
	default:
		return nil, nil
	}
	return shard.New(members, cfg)
}

// buildLogger constructs the process logger from the -log-level and
// -log-format flags.
func buildLogger(w *os.File, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: want debug, info, warn, or error", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("bad -log-format %q: want text or json", format)
}

func fatal(logger *slog.Logger, msg string) {
	logger.Error(msg)
	os.Exit(1)
}
