// Command kspserver serves kSP queries over HTTP.
//
// Usage:
//
//	kspserver -data data.nt -addr :8080
//	kspserver -snapshot data.snap -addr :8080
//
// Endpoints: /search, /describe, /stats, /healthz (see internal/server).
// Example:
//
//	curl 'localhost:8080/search?x=43.5&y=4.7&kw=ancient,roman&k=5&trees=1'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registered on the side listener only (-pprof)
	"os"
	"os/signal"
	"syscall"
	"time"

	"ksp"
	"ksp/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kspserver: ")
	var (
		data     = flag.String("data", "", "N-Triples dataset to load")
		snapshot = flag.String("snapshot", "", "snapshot produced by Dataset.Save (faster startup)")
		addr     = flag.String("addr", ":8080", "listen address")
		alphaR   = flag.Int("alpha", 3, "α radius (N-Triples loading only)")
		maxK     = flag.Int("maxk", 100, "largest k a request may ask for")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-query evaluation cap")
		parallel = flag.Int("parallel", 0, "default pipeline workers per query (0 = serial; requests may override with ?parallel=, capped at GOMAXPROCS)")
		cache    = flag.Int("cache", 0, "looseness cache entries (0 = disabled, negative = built-in default)")
		pprof    = flag.String("pprof", "", "side listen address for net/http/pprof (empty = disabled), e.g. localhost:6060")

		admitWidth = flag.Int("admit-width", 0, "total pipeline width admitted concurrently (0 = 2×GOMAXPROCS, negative = unlimited)")
		admitQueue = flag.Int("admit-queue", 0, "requests that may queue for admission before shedding 429 (0 = 16, negative = no queue)")
		queueWait  = flag.Duration("queue-wait", time.Second, "longest a request queues for admission before shedding 503")
		drain      = flag.Duration("drain", 15*time.Second, "in-flight request drain budget on SIGTERM/SIGINT")
	)
	flag.Parse()

	cfg := ksp.DefaultConfig()
	cfg.AlphaRadius = *alphaR
	cfg.LoosenessCacheEntries = *cache

	var (
		ds  *ksp.Dataset
		err error
	)
	start := time.Now()
	switch {
	case *snapshot != "":
		ds, err = ksp.LoadSnapshot(*snapshot, cfg)
	case *data != "":
		ds, err = ksp.OpenFile(*data, cfg)
	default:
		log.Fatal("need -data or -snapshot")
	}
	if err != nil {
		log.Fatal(err)
	}
	st := ds.Stats()
	fmt.Printf("loaded %d vertices, %d edges, %d places in %v\n",
		st.Vertices, st.Edges, st.Places, time.Since(start).Round(time.Millisecond))

	if *pprof != "" {
		// The profiling endpoints stay off the public listener: pprof's
		// init registers on http.DefaultServeMux, which only this side
		// server exposes.
		go func() {
			fmt.Printf("pprof on http://%s/debug/pprof/\n", *pprof)
			if err := http.ListenAndServe(*pprof, nil); err != nil {
				log.Printf("pprof listener: %v", err)
			}
		}()
	}

	s := server.New(ds)
	s.MaxK = *maxK
	s.Timeout = *timeout
	s.DefaultParallel = s.MaxParallel
	if *parallel >= 0 {
		s.DefaultParallel = *parallel
	}
	s.AdmitCapacity = *admitWidth
	s.AdmitQueue = *admitQueue
	s.QueueTimeout = *queueWait

	srv := &http.Server{Addr: *addr, Handler: s}
	errc := make(chan error, 1)
	go func() {
		fmt.Printf("listening on %s\n", *addr)
		errc <- srv.ListenAndServe()
	}()

	// SIGTERM/SIGINT drains gracefully: readiness flips off first so
	// load balancers stop routing here, then in-flight requests get the
	// drain budget to finish before the listener dies.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-sigc:
		fmt.Printf("received %v, draining for up to %v\n", sig, *drain)
		s.SetReady(false)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Fatalf("drain incomplete: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}
}
