// Command kspquery loads a spatial RDF dataset (N-Triples) and answers
// kSP queries from the command line or from a workload file.
//
// Usage:
//
//	kspquery -data data.nt -at "43.51,4.75" -kw "ancient,roman" -k 5
//	kspquery -data data.nt -workload q.txt -algo SP -stats
//
// The workload file holds one query per line: "x y kw1,kw2,...".
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"ksp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kspquery: ")
	var (
		data     = flag.String("data", "", "N-Triples dataset (required)")
		at       = flag.String("at", "", `query location "x,y"`)
		kw       = flag.String("kw", "", "comma-separated query keywords")
		k        = flag.Int("k", 5, "number of places to retrieve")
		algoName = flag.String("algo", "SP", "algorithm: BSP | SPP | SP | TA")
		alphaR   = flag.Int("alpha", 3, "α radius of the word-neighbourhood index (0 disables)")
		dirName  = flag.String("dir", "out", "tree direction: out | undirected")
		workload = flag.String("workload", "", "run every query in this file instead of -at/-kw")
		trees    = flag.Bool("trees", false, "print the semantic-place trees")
		stats    = flag.Bool("stats", false, "print per-query cost statistics")
		trace    = flag.Bool("trace", false, "print the evaluation's span tree (timed phases and per-candidate work)")
		traceOut = flag.String("trace-out", "", "write the trace as Chrome/Perfetto trace_event JSON to this file (captures even without -trace)")
		explain  = flag.Bool("explain", false, "print the query's structured plan and execution profile")
		semOnly  = flag.Bool("semantic-only", false, "rank by looseness alone, ignoring location (-at not needed)")
		allTrees = flag.Int("all-trees", 0, "print up to N tied tightest trees per result (footnote 2 option 2)")
		maxDist  = flag.Float64("max-dist", 0, "restrict results to this radius around -at (0 = unlimited)")
		stem     = flag.Bool("stem", false, "enable Porter stemming and stopword removal")
	)
	flag.Parse()
	if *data == "" {
		flag.Usage()
		os.Exit(2)
	}

	algo, err := parseAlgo(*algoName)
	if err != nil {
		log.Fatal(err)
	}
	cfg := ksp.DefaultConfig()
	cfg.AlphaRadius = *alphaR
	if strings.HasPrefix(strings.ToLower(*dirName), "un") {
		cfg.Direction = ksp.Undirected
	}
	if *stem {
		cfg.Stemming = true
		cfg.RemoveStopwords = true
	}

	start := time.Now()
	ds, err := ksp.OpenFile(*data, cfg)
	if err != nil {
		log.Fatal(err)
	}
	st := ds.Stats()
	fmt.Printf("loaded %d vertices, %d edges, %d places, %d terms in %v\n",
		st.Vertices, st.Edges, st.Places, st.Terms, time.Since(start).Round(time.Millisecond))

	if *workload != "" {
		runWorkload(ds, algo, *workload, *k, *stats)
		return
	}
	if *semOnly {
		if *kw == "" {
			log.Fatal("need -kw with -semantic-only")
		}
		res, err := ds.KeywordSearch(splitList(*kw), *k)
		if err != nil {
			log.Fatal(err)
		}
		printResults(ds, res, false)
		printTiedTrees(ds, res, splitList(*kw), *allTrees)
		return
	}
	if *at == "" || *kw == "" {
		log.Fatal("need -at and -kw (or -workload, or -semantic-only)")
	}
	loc, err := parsePoint(*at)
	if err != nil {
		log.Fatal(err)
	}
	q := ksp.Query{Loc: loc, Keywords: splitList(*kw), K: *k}
	opts := ksp.Options{CollectTrees: *trees, MaxDist: *maxDist}
	var tr *ksp.Trace
	if *trace || *traceOut != "" {
		tr = ksp.NewTrace("kspquery")
		opts.Trace = tr
	}
	res, qstats, err := ds.SearchWith(algo, q, opts)
	if err != nil {
		log.Fatal(err)
	}
	printResults(ds, res, *trees)
	printTiedTrees(ds, res, q.Keywords, *allTrees)
	if *stats {
		printStats(qstats)
	}
	if *explain {
		printExplain(ds.ExplainFor(algo, q, opts, qstats, len(res)))
	}
	if tr != nil {
		tr.Finish()
		root := tr.JSON()
		if *traceOut != "" {
			if err := writePerfetto(*traceOut, root); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n", *traceOut)
		}
		if *trace {
			fmt.Println("trace:")
			printSpan(root, 1)
		}
	}
}

// writePerfetto renders the span tree as Chrome/Perfetto trace_event
// JSON, the format flamegraph viewers open directly.
func writePerfetto(path string, root *ksp.SpanJSON) error {
	data, err := json.MarshalIndent(ksp.PerfettoFromSpan(root), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// printExplain renders the EXPLAIN report: the plan lines say what the
// engine decided to do, the profile line what the decision cost.
func printExplain(rep *ksp.ExplainReport) {
	p, pr := rep.Plan, rep.Profile
	win := p.WindowPolicy
	if p.Window > 0 {
		win = fmt.Sprintf("%s(%d)", p.WindowPolicy, p.Window)
	}
	fmt.Println("explain:")
	fmt.Printf("  plan: algo=%s k=%d workers=%d window=%s direction=%s ranking=%s\n",
		p.Algo, p.K, p.Workers, win, p.Direction, p.Ranking)
	fmt.Printf("  rules: r1=%v r2=%v r3=%v r4=%v (alpha=%d reachability=%v cache=%v)\n",
		p.Rule1, p.Rule2, p.Rule3, p.Rule4, p.AlphaRadius, p.Reachability, p.LoosenessCache)
	if len(p.Keywords) > 0 {
		var parts []string
		for _, kw := range p.Keywords {
			parts = append(parts, fmt.Sprintf("%s(df=%d)", kw.Term, kw.DocFrequency))
		}
		fmt.Printf("  keywords (rule-1 order): %s\n", strings.Join(parts, " "))
	}
	if !p.Answerable {
		fmt.Println("  unanswerable: some keyword matches no document")
	}
	fmt.Printf("  profile: %dµs (semantic %dµs) tqsp=%d places=%d pruned r1=%d r2=%d r3=%d r4=%d cache hit/bound/miss=%d/%d/%d\n",
		pr.DurationMicros, pr.SemanticMicros, pr.TQSPComputations, pr.PlacesRetrieved,
		pr.PrunedRule1, pr.PrunedRule2, pr.PrunedRule3, pr.PrunedRule4,
		pr.CacheHits, pr.CacheBoundHits, pr.CacheMisses)
}

// printSpan renders one span and its children, indented by depth.
func printSpan(s *ksp.SpanJSON, depth int) {
	var attrs []string
	for _, a := range s.Attrs {
		attrs = append(attrs, a.Key+"="+a.Value)
	}
	line := fmt.Sprintf("%s%s %dµs", strings.Repeat("  ", depth), s.Name, s.DurationMicros)
	if len(attrs) > 0 {
		line += " [" + strings.Join(attrs, " ") + "]"
	}
	fmt.Println(line)
	for _, c := range s.Children {
		printSpan(c, depth+1)
	}
}

// printTiedTrees lists every minimal-looseness tree of each result when
// -all-trees is set.
func printTiedTrees(ds *ksp.Dataset, res []ksp.Result, kws []string, limit int) {
	if limit <= 0 {
		return
	}
	for _, r := range res {
		trees, loose, err := ds.TightestTrees(r.Place, kws, limit)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s has %d tied tree(s) at looseness %.0f:\n", ds.URI(r.Place), len(trees), loose)
		for i, tr := range trees {
			var names []string
			for _, n := range tr.Nodes {
				names = append(names, ds.URI(n.V))
			}
			fmt.Printf("    %d: %s\n", i+1, strings.Join(names, " | "))
		}
	}
}

func parseAlgo(s string) (ksp.Algorithm, error) {
	switch strings.ToUpper(s) {
	case "BSP":
		return ksp.AlgoBSP, nil
	case "SPP":
		return ksp.AlgoSPP, nil
	case "SP":
		return ksp.AlgoSP, nil
	case "TA":
		return ksp.AlgoTA, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q", s)
}

func parsePoint(s string) (ksp.Point, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return ksp.Point{}, fmt.Errorf("bad location %q, want \"x,y\"", s)
	}
	x, err1 := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	y, err2 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err1 != nil || err2 != nil {
		return ksp.Point{}, fmt.Errorf("bad location %q", s)
	}
	return ksp.Point{X: x, Y: y}, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func runWorkload(ds *ksp.Dataset, algo ksp.Algorithm, path string, k int, showStats bool) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	//ksplint:ignore droppederr -- workload file opened read-only; Close cannot lose data
	defer f.Close()
	sc := bufio.NewScanner(f)
	line := 0
	var total ksp.Stats
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 {
			continue
		}
		x, err1 := strconv.ParseFloat(fields[0], 64)
		y, err2 := strconv.ParseFloat(fields[1], 64)
		if err1 != nil || err2 != nil {
			log.Fatalf("%s:%d: bad location", path, line)
		}
		q := ksp.Query{Loc: ksp.Point{X: x, Y: y}, Keywords: splitList(fields[2]), K: k}
		res, st, err := ds.SearchWith(algo, q, ksp.Options{})
		if err != nil {
			log.Fatal(err)
		}
		total.Add(st)
		fmt.Printf("query %d: %d results in %v (keywords %v)\n", line, len(res), st.TotalTime().Round(time.Microsecond), q.Keywords)
		printResults(ds, res, false)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if showStats {
		fmt.Println("\naggregate:")
		printStats(&total)
	}
}

func printResults(ds *ksp.Dataset, res []ksp.Result, trees bool) {
	for i, r := range res {
		loc, _ := ds.Location(r.Place)
		fmt.Printf("  %d. %-40s score=%.4f L=%.0f S=%.4f at (%g, %g)\n",
			i+1, ds.URI(r.Place), r.Score, r.Looseness, r.Dist, loc.X, loc.Y)
		if trees && r.Tree != nil {
			for _, n := range r.Tree.Nodes {
				indent := strings.Repeat("  ", n.Depth+2)
				marks := ""
				if len(n.Matched) > 0 {
					marks = fmt.Sprintf("  <- matches %d keyword(s)", len(n.Matched))
				}
				fmt.Printf("%s%s%s\n", indent, ds.URI(n.V), marks)
			}
		}
	}
}

func printStats(st *ksp.Stats) {
	fmt.Printf("  semantic time: %v, other time: %v\n", st.SemanticTime.Round(time.Microsecond), st.OtherTime.Round(time.Microsecond))
	fmt.Printf("  TQSP computations: %d, R-tree node accesses: %d, places retrieved: %d\n",
		st.TQSPComputations, st.RTreeNodeAccesses, st.PlacesRetrieved)
	fmt.Printf("  pruned: rule1=%d rule2=%d rule3=%d rule4=%d; reach queries: %d\n",
		st.PrunedUnqualified, st.PrunedDynamicBound, st.PrunedAlphaPlaces, st.PrunedAlphaNodes, st.ReachQueries)
}
