// Command kspgen generates synthetic spatial RDF datasets (N-Triples) and
// kSP query workloads shaped like the paper's DBpedia/Yago experiments.
//
// Usage:
//
//	kspgen -shape dbpedia -n 50000 -o data.nt
//	kspgen -shape yago -n 50000 -o data.nt -queries q.txt -qcount 100 -m 5
//
// The query file holds one query per line: "x y kw1,kw2,...".
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"ksp/internal/gen"
	"ksp/internal/geo"
	"ksp/internal/nt"
	"ksp/internal/rdf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kspgen: ")
	var (
		shape   = flag.String("shape", "dbpedia", "dataset shape: dbpedia | yago")
		n       = flag.Int("n", 20000, "number of vertices")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("o", "data.nt", "output N-Triples file")
		queries = flag.String("queries", "", "also write a query workload to this file")
		qcount  = flag.Int("qcount", 100, "number of queries in the workload")
		m       = flag.Int("m", 5, "keywords per query")
		class   = flag.String("class", "O", "query class: O | SDLL | LDLL")
	)
	flag.Parse()

	var cfg gen.Config
	switch strings.ToLower(*shape) {
	case "dbpedia":
		cfg = gen.DBpediaConfig(*n, *seed)
	case "yago":
		cfg = gen.YagoConfig(*n, *seed)
	default:
		log.Fatalf("unknown shape %q (want dbpedia or yago)", *shape)
	}

	g := gen.Generate(cfg)
	fmt.Printf("generated %s-like graph: %d vertices, %d edges, %d places, %d terms\n",
		*shape, g.NumVertices(), g.NumEdges(), len(g.Places()), g.Vocab.Len())

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := nt.WriteGraph(g, f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)

	if *queries == "" {
		return
	}
	qg := gen.NewQueryGen(g, rdf.Outgoing, *seed+1000)
	qf, err := os.Create(*queries)
	if err != nil {
		log.Fatal(err)
	}
	qw := bufio.NewWriter(qf)
	for i := 0; i < *qcount; i++ {
		var loc geo.Point
		var kws []string
		switch strings.ToUpper(*class) {
		case "SDLL":
			loc, kws = qg.SDLL(*m)
		case "LDLL":
			loc, kws = qg.LDLL(*m)
		default:
			loc, kws = qg.Original(*m)
		}
		fmt.Fprintf(qw, "%g %g %s\n", loc.X, loc.Y, strings.Join(kws, ","))
	}
	if err := qw.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := qf.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d %s queries to %s\n", *qcount, strings.ToUpper(*class), *queries)
}
