// Command kspbench reproduces the paper's evaluation: every table and
// figure of Section 6 has a corresponding experiment that prints the same
// rows/series over synthetic datasets shaped like DBpedia and Yago.
//
// Usage:
//
//	kspbench -exp all                 # the full evaluation
//	kspbench -exp fig3 -scale 50000   # one experiment at a larger scale
//	kspbench -list
//
// Absolute numbers differ from the paper (synthetic laptop-scale data, Go
// instead of Java); EXPERIMENTS.md records the shape comparisons.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"ksp/internal/bench"
	"ksp/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kspbench: ")
	var expVal string
	flag.StringVar(&expVal, "exp", "all", "experiment id (see -list), comma-separated ids, or 'all'")
	flag.StringVar(&expVal, "experiment", "all", "alias for -exp")
	var (
		exp      = &expVal
		scale    = flag.Int("scale", 20000, "vertices per synthetic dataset")
		queries  = flag.Int("queries", 20, "queries per setting (the paper uses 100)")
		seed     = flag.Int64("seed", 1, "random seed")
		deadline = flag.Duration("bsp-deadline", 5*time.Second, "per-query cap for BSP/TA (paper: 120s)")
		csvDir   = flag.String("csv", "", "also write each report as CSV into this directory")
		jsonOut  = flag.String("json", "", "write all reports plus run metadata as one JSON document to this file ('-' = stdout)")
		list     = flag.Bool("list", false, "list experiment ids and exit")

		loadQPS    = flag.String("load-qps", "", "comma-separated offered-QPS ladder for the load experiment (default 25,50,100)")
		loadDur    = flag.Duration("load-duration", 0, "arrival window per load rate (default 3s)")
		loadPar    = flag.Int("load-parallel", 0, "per-request pipeline width for the load experiment (default 4)")
		loadWin    = flag.Int("load-window", 0, "scheduler window directive for the load experiment (0 = adaptive)")
		loadShards = flag.Int("load-shards", 0, "serve the load experiment through N local spatial shards (0/1 = single engine)")

		traceQ   = flag.Bool("trace-queries", false, "attach (and discard) a span trace to every query, measuring the ?trace=1 configuration")
		explainQ = flag.Bool("explain-queries", false, "assemble (and discard) an EXPLAIN report after every query, measuring the ?explain=1 configuration")
	)
	flag.Parse()

	if *list {
		for _, id := range bench.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}

	s := bench.NewSuite(*scale, *queries, *seed, os.Stdout)
	s.BSPDeadline = *deadline
	if *loadQPS != "" {
		for _, part := range strings.Split(*loadQPS, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil || v <= 0 {
				log.Fatalf("-load-qps: bad rate %q", part)
			}
			s.LoadQPS = append(s.LoadQPS, v)
		}
	}
	s.LoadDuration = *loadDur
	s.LoadParallel = *loadPar
	s.LoadWindow = *loadWin
	s.LoadShards = *loadShards
	s.TraceQueries = *traceQ
	s.ExplainQueries = *explainQ
	// The registry rides along for -json: the document then carries the
	// run's cumulative engine counters next to the report tables.
	reg := obs.NewRegistry()
	if *jsonOut != "" {
		s.Metrics = reg
	}
	start := time.Now()
	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = bench.ExperimentIDs()
	}
	// With -json - the JSON document owns stdout; the human-readable
	// tables move to stderr so the output stays machine-parseable.
	tables := io.Writer(os.Stdout)
	if *jsonOut == "-" {
		tables = os.Stderr
	}
	var all []*bench.Report
	for _, id := range ids {
		reports, err := s.Experiment(id)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range reports {
			if err := r.Print(tables); err != nil {
				log.Fatal(err)
			}
		}
		all = append(all, reports...)
		if *csvDir != "" {
			names, err := bench.SaveCSVs(*csvDir, reports)
			if err != nil {
				log.Fatal(err)
			}
			//ksplint:ignore droppederr -- tables is os.Stdout/Stderr; process-stream diagnostics
			fmt.Fprintf(tables, "  csv: %v\n", names)
		}
	}
	if *jsonOut != "" {
		meta := bench.RunMeta{
			Tool:        "kspbench",
			Generated:   time.Now().UTC().Format(time.RFC3339),
			Scale:       *scale,
			Queries:     *queries,
			Seed:        *seed,
			GoVersion:   runtime.Version(),
			GOOS:        runtime.GOOS,
			GOARCH:      runtime.GOARCH,
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			NumCPU:      runtime.NumCPU(),
			Experiments: ids,

			TraceQueries:   *traceQ,
			ExplainQueries: *explainQ,
		}
		w := os.Stdout
		var f *os.File
		if *jsonOut != "-" {
			var err error
			if f, err = os.Create(*jsonOut); err != nil {
				log.Fatal(err)
			}
			w = f
		}
		if err := bench.WriteJSONMetrics(w, meta, all, reg.Snapshot()); err != nil {
			log.Fatal(err)
		}
		if f != nil {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("json: %s\n", *jsonOut)
		}
	}
	//ksplint:ignore droppederr -- tables is os.Stdout/Stderr; process-stream diagnostics
	fmt.Fprintf(tables, "\ncompleted %q at scale %d with %d queries/setting in %v\n",
		*exp, *scale, *queries, time.Since(start).Round(time.Millisecond))
}
