// Command ksplint runs the repository's invariant checks (DESIGN.md
// §12, §17) over the module: determinism on result paths, obs
// nil-safety, lock discipline, context propagation, dropped errors,
// metric naming, and the flow-aware lifetime suite — mmap-slice
// borrows, pool-recycling protocols, hot-path allocation budgets, and
// goroutine leak paths. It is the lint gate scripts/check.sh and CI
// run on every commit.
//
// Usage:
//
//	ksplint [-tags faultinject] [-checks determinism,locks] [-list]
//	        [-unused-ignores] [-hotpath-roots] [packages]
//
// Packages default to ./... of the enclosing module. -unused-ignores
// additionally audits //ksplint:ignore comments and fails on any that
// suppress nothing (it requires all checks enabled, since an ignore
// for a disabled check is merely unexercised). -hotpath-roots prints
// the //ksplint:hotpath root functions and exits; CI diffs it against
// the dynamic allocation gate's entry points. Exit status is 1 when
// findings remain after suppression, 2 on load or usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ksp/internal/analysis"
)

func main() {
	tags := flag.String("tags", "", "comma-separated build tags (e.g. faultinject)")
	checks := flag.String("checks", "", "comma-separated checks to run (default: all)")
	list := flag.Bool("list", false, "list available checks and exit")
	unusedIgnores := flag.Bool("unused-ignores", false, "also fail on //ksplint:ignore comments that suppress nothing (requires all checks enabled)")
	hotpathRoots := flag.Bool("hotpath-roots", false, "print the //ksplint:hotpath root functions and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ksplint [flags] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.AllChecks() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *unusedIgnores && *checks != "" {
		fatal(fmt.Errorf("-unused-ignores requires all checks enabled; drop -checks"))
	}

	var tagList []string
	if *tags != "" {
		tagList = strings.Split(*tags, ",")
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, loader, err := analysis.LoadModule(cwd, flag.Args(), tagList)
	if err != nil {
		fatal(err)
	}
	cfg := analysis.DefaultConfig(loader.ModulePath)
	if *hotpathRoots {
		for _, desc := range analysis.HotPathRootDescs(pkgs, cfg) {
			fmt.Println(desc)
		}
		return
	}
	if *checks != "" {
		cfg.Checks = make(map[string]bool)
		for _, name := range strings.Split(*checks, ",") {
			name = strings.TrimSpace(name)
			if analysis.CheckByName(name) == nil {
				fatal(fmt.Errorf("unknown check %q (try -list)", name))
			}
			cfg.Checks[name] = true
		}
	}
	var findings, unused []analysis.Finding
	if *unusedIgnores {
		findings, unused = analysis.RunChecksAudit(pkgs, cfg)
	} else {
		findings = analysis.RunChecks(pkgs, cfg)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	for _, f := range unused {
		fmt.Println(f)
	}
	if n := len(findings) + len(unused); n > 0 {
		fmt.Fprintf(os.Stderr, "ksplint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ksplint:", err)
	os.Exit(2)
}
