// Command ksplint runs the repository's invariant checks (DESIGN.md
// §12) over the module: determinism on result paths, obs nil-safety,
// lock discipline, context propagation, dropped errors, and metric
// naming. It is the lint gate scripts/check.sh and CI run on every
// commit.
//
// Usage:
//
//	ksplint [-tags faultinject] [-checks determinism,locks] [-list] [packages]
//
// Packages default to ./... of the enclosing module. Exit status is 1
// when findings remain after suppression, 2 on load or usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ksp/internal/analysis"
)

func main() {
	tags := flag.String("tags", "", "comma-separated build tags (e.g. faultinject)")
	checks := flag.String("checks", "", "comma-separated checks to run (default: all)")
	list := flag.Bool("list", false, "list available checks and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ksplint [flags] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.AllChecks() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	var tagList []string
	if *tags != "" {
		tagList = strings.Split(*tags, ",")
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, loader, err := analysis.LoadModule(cwd, flag.Args(), tagList)
	if err != nil {
		fatal(err)
	}
	cfg := analysis.DefaultConfig(loader.ModulePath)
	if *checks != "" {
		cfg.Checks = make(map[string]bool)
		for _, name := range strings.Split(*checks, ",") {
			name = strings.TrimSpace(name)
			if analysis.CheckByName(name) == nil {
				fatal(fmt.Errorf("unknown check %q (try -list)", name))
			}
			cfg.Checks[name] = true
		}
	}
	findings := analysis.RunChecks(pkgs, cfg)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "ksplint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ksplint:", err)
	os.Exit(2)
}
