package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestExitNonzeroOnFindings re-executes this test binary as ksplint,
// pointed at golden testdata that is known to contain findings, and
// asserts the process exits 1 (findings reported) rather than 0 or 2
// (load/usage error). This pins the CI contract: a finding anywhere in
// the tree fails the lint job.
func TestExitNonzeroOnFindings(t *testing.T) {
	if os.Getenv("KSPLINT_MAIN") == "1" {
		os.Args = []string{"ksplint", "-checks", "droppederr",
			"./internal/analysis/testdata/src/droppederr"}
		main()
		os.Exit(0) // main returning means zero findings
	}
	cmd := exec.Command(os.Args[0], "-test.run", "^TestExitNonzeroOnFindings$")
	cmd.Env = append(os.Environ(), "KSPLINT_MAIN=1")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want exit error, got err=%v, output:\n%s", err, out)
	}
	if code := ee.ExitCode(); code != 1 {
		t.Fatalf("want exit code 1, got %d, output:\n%s", code, out)
	}
	if !strings.Contains(string(out), "droppederr") {
		t.Fatalf("output does not mention droppederr findings:\n%s", out)
	}
}
